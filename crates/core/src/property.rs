//! Properties: ω-regular sets given by PLTL formulas or Büchi automata
//! (Definition 3.2).

use std::error::Error;
use std::fmt;

use rl_abstraction::AbstractionError;
use rl_automata::{Alphabet, AutomataError, Guard};
use rl_buchi::{complement_with, Buchi};
use rl_logic::{formula_to_buchi, Formula, Labeling};

/// Errors from the relative-liveness/safety deciders and pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// Underlying automata error.
    Automata(AutomataError),
    /// Underlying abstraction error.
    Abstraction(AbstractionError),
    /// A precondition of a construction failed; the message names it.
    Precondition(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Automata(e) => write!(f, "{e}"),
            CoreError::Abstraction(e) => write!(f, "{e}"),
            CoreError::Precondition(m) => write!(f, "precondition failed: {m}"),
        }
    }
}

impl Error for CoreError {}

impl From<AutomataError> for CoreError {
    fn from(e: AutomataError) -> CoreError {
        CoreError::Automata(e)
    }
}

impl From<AbstractionError> for CoreError {
    fn from(e: AbstractionError) -> CoreError {
        CoreError::Abstraction(e)
    }
}

/// An ω-regular property `P ⊆ Σ^ω`.
///
/// Formula-given properties are interpreted with an explicit [`Labeling`]
/// (or the canonical `λ_Σ` by default), and their complements are obtained
/// by *negating the formula* — avoiding exponential Büchi complementation.
/// Automaton-given properties fall back to rank-based complementation.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_core::Property;
/// use rl_logic::parse;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ab = Alphabet::new(["request", "result"])?;
/// let p = Property::formula(parse("[]<>result")?);
/// let aut = p.to_buchi(&ab)?;
/// assert!(!aut.is_empty_language());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum Property {
    /// A PLTL formula interpreted with the canonical labeling `λ_Σ` of the
    /// system's alphabet.
    Formula(Formula),
    /// A PLTL formula with an explicit labeling (e.g. `λ_hΣΣ'`).
    LabeledFormula(Formula, Labeling),
    /// A property given directly as a Büchi automaton.
    Automaton(Buchi),
}

impl Property {
    /// A formula property under the canonical labeling.
    pub fn formula(f: Formula) -> Property {
        Property::Formula(f)
    }

    /// A formula property under an explicit labeling.
    pub fn labeled(f: Formula, labeling: Labeling) -> Property {
        Property::LabeledFormula(f, labeling)
    }

    /// A Büchi-automaton property.
    pub fn automaton(b: Buchi) -> Property {
        Property::Automaton(b)
    }

    /// A Büchi automaton for the property over `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns an alphabet mismatch when a labeled formula or automaton was
    /// built for a different alphabet.
    pub fn to_buchi(&self, alphabet: &Alphabet) -> Result<Buchi, CoreError> {
        match self {
            Property::Formula(f) => {
                let lam = Labeling::canonical(alphabet);
                Ok(formula_to_buchi(f, &lam))
            }
            Property::LabeledFormula(f, lam) => {
                lam.alphabet().check_compatible(alphabet)?;
                Ok(formula_to_buchi(f, lam))
            }
            Property::Automaton(b) => {
                b.alphabet().check_compatible(alphabet)?;
                Ok(b.clone())
            }
        }
    }

    /// A Büchi automaton for the *complement* `Σ^ω \ P`.
    ///
    /// # Errors
    ///
    /// Same as [`Property::to_buchi`].
    pub fn negation_to_buchi(&self, alphabet: &Alphabet) -> Result<Buchi, CoreError> {
        self.negation_to_buchi_with(alphabet, &Guard::unlimited())
    }

    /// [`Property::negation_to_buchi`] under a resource [`Guard`].
    ///
    /// Only automaton-given properties can trip the guard (their complement
    /// uses the exponential rank-based construction); formula-given
    /// properties negate the formula instead, which is linear.
    ///
    /// # Errors
    ///
    /// Same as [`Property::to_buchi`], plus a budget error when the guard
    /// trips during complementation.
    pub fn negation_to_buchi_with(
        &self,
        alphabet: &Alphabet,
        guard: &Guard,
    ) -> Result<Buchi, CoreError> {
        let _span = guard.span("negation");
        match self {
            Property::Formula(f) => {
                let lam = Labeling::canonical(alphabet);
                Ok(formula_to_buchi(&f.clone().not(), &lam))
            }
            Property::LabeledFormula(f, lam) => {
                lam.alphabet().check_compatible(alphabet)?;
                Ok(formula_to_buchi(&f.clone().not(), lam))
            }
            Property::Automaton(b) => {
                b.alphabet().check_compatible(alphabet)?;
                Ok(complement_with(b, guard)?)
            }
        }
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Property::Formula(f) => format!("⊨ {f}"),
            Property::LabeledFormula(f, _) => format!("⊨ {f} (custom labeling)"),
            Property::Automaton(b) => format!("Büchi property ({} states)", b.state_count()),
        }
    }
}

impl From<Formula> for Property {
    fn from(f: Formula) -> Property {
        Property::Formula(f)
    }
}

impl From<Buchi> for Property {
    fn from(b: Buchi) -> Property {
        Property::Automaton(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_buchi::UpWord;
    use rl_logic::parse;

    #[test]
    fn formula_and_negation_partition() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let p = Property::formula(parse("[]<>a").unwrap());
        let pos = p.to_buchi(&ab).unwrap();
        let neg = p.negation_to_buchi(&ab).unwrap();
        for w in [
            UpWord::periodic(vec![a]).unwrap(),
            UpWord::periodic(vec![b]).unwrap(),
            UpWord::new(vec![a, b], vec![b, a]).unwrap(),
        ] {
            assert_ne!(pos.accepts_upword(&w), neg.accepts_upword(&w));
        }
    }

    #[test]
    fn automaton_property_roundtrip() {
        let ab = Alphabet::new(["a"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = Buchi::from_parts(ab.clone(), 1, [0], [0], [(0, a, 0)]).unwrap();
        let p = Property::automaton(b);
        let pos = p.to_buchi(&ab).unwrap();
        assert!(pos.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        let neg = p.negation_to_buchi(&ab).unwrap();
        assert!(neg.is_empty_language());
    }

    #[test]
    fn alphabet_mismatch_detected() {
        let ab1 = Alphabet::new(["a"]).unwrap();
        let ab2 = Alphabet::new(["b"]).unwrap();
        let b = Buchi::universal(ab1);
        let p = Property::automaton(b);
        assert!(p.to_buchi(&ab2).is_err());
    }
}
