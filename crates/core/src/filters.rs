//! The semidecision pre-filter ladder for the Lemma 4.3 inclusion.
//!
//! Deciding `pre(L_ω) ⊆ pre(L_ω ∩ P)` is PSPACE-hard in general, but a
//! large slice of real inputs is settled by near-linear sound abstractions.
//! This module chains three of them — in cost order — in front of the exact
//! (lazy or eager) decider:
//!
//! 1. **Parikh / letter-count** ([`rl_automata::parikh_refute`]) — a prefix
//!    whose per-letter counts are achievable on the left but provably not
//!    on the right refutes the inclusion, O(states × alphabet).
//! 2. **Counts mod k** ([`rl_automata::modk_refute`]) — quotient both sides
//!    by Parikh vectors modulo `k` (`k ∈ {2, 3, 5}` by default, overridden
//!    by the `RL_FILTER_MODK` environment variable) and refute when the
//!    left reaches a residue class the right never does.
//! 3. **Simulation fast-accept** ([`rl_automata::nfa_simulates`]) — when
//!    the right automaton simulates the left, the inclusion holds outright
//!    and the exact decider is skipped.
//!
//! Each stage answers [`FilterOutcome::Proved`],
//! [`FilterOutcome::Refuted`] (with a concrete replay-validated witness in
//! the usual shortest-witness format), or [`FilterOutcome::Unknown`]; only
//! `Unknown` falls through to the next stage and finally to the exact
//! decider, so the ladder can never flip a verdict — it can only answer
//! early. Stages poll the guard's deadline/cancellation but never charge
//! states or transitions: with the ladder falling through, the
//! deterministic metric totals are bit-for-bit those of a `--no-filters`
//! run. Effectiveness is measured instead through dedicated
//! `filter/<stage>/{hit,miss}` counters, per-stage `filter/<stage>_us`
//! latency histograms (when the guard carries a `HistogramRegistry`),
//! ladder-level `filter/hit` / `filter/fallthrough` totals (the `--stats`
//! hit-rate row), and `filter-hit` / `filter-fallthrough` trace instants.

use std::time::Instant;

use rl_automata::{modk_refute, nfa_simulates, parikh_refute, Guard, Nfa, Word};

use crate::property::CoreError;

/// Default counts-mod-k moduli the ladder tries, in order.
const DEFAULT_MODULI: [usize; 3] = [2, 3, 5];

/// Answer of one ladder stage (and of the ladder as a whole).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterOutcome {
    /// The inclusion `pre(L_ω) ⊆ pre(L_ω ∩ P)` holds; the exact decider
    /// can be skipped.
    Proved,
    /// The inclusion fails, witnessed by a concrete doomed prefix (replay
    /// validated: accepted on the left, rejected on the right).
    Refuted(Word),
    /// The abstraction could not settle the question; fall through.
    Unknown,
}

/// Pure parse of an `RL_FILTER_MODK` value: the accepted moduli and, when
/// anything was rejected (unparsable tokens, values below 2, or a list
/// that came up empty), the warning text to emit. Side-effect free so the
/// parallel test suite can cover the knob without mutating the process
/// environment.
pub fn parse_moduli(raw: &str) -> (Vec<usize>, Option<String>) {
    let mut ks: Vec<usize> = Vec::new();
    let mut rejected: Vec<&str> = Vec::new();
    for tok in raw
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|s| !s.is_empty())
    {
        match tok.parse::<usize>() {
            Ok(k) if k >= 2 => ks.push(k),
            _ => rejected.push(tok),
        }
    }
    if ks.is_empty() && (!rejected.is_empty() || !raw.is_empty()) {
        let warning = format!(
            "warning: RL_FILTER_MODK={raw:?} has no valid moduli (integers >= 2); \
             using default {DEFAULT_MODULI:?}"
        );
        return (DEFAULT_MODULI.to_vec(), Some(warning));
    }
    let warning = (!rejected.is_empty()).then(|| {
        format!(
            "warning: RL_FILTER_MODK: ignoring invalid moduli {rejected:?} \
             (integers >= 2); using {ks:?}"
        )
    });
    if ks.is_empty() {
        (DEFAULT_MODULI.to_vec(), warning)
    } else {
        (ks, warning)
    }
}

/// The moduli the mod-k stage tries: `RL_FILTER_MODK` (a comma- or
/// space-separated list of integers ≥ 2, e.g. `RL_FILTER_MODK=4,7`) when
/// set and non-empty, else `{2, 3, 5}`. Invalid tokens warn once on stderr
/// instead of being silently dropped.
pub fn modk_moduli() -> Vec<usize> {
    match std::env::var("RL_FILTER_MODK") {
        Ok(raw) => {
            let (ks, warning) = parse_moduli(&raw);
            if let Some(msg) = warning {
                rl_automata::knobs::warn_once("RL_FILTER_MODK", &msg);
            }
            ks
        }
        Err(_) => DEFAULT_MODULI.to_vec(),
    }
}

/// Records one stage's outcome: a `hit`/`miss` count on the guard's
/// metrics, and the stage's wall-clock spend as a `filter/<stage>_us`
/// histogram sample when a histogram registry is attached — so the ladder
/// reports latency *percentiles*, not just a single elapsed total.
fn note_stage(guard: &Guard, stage: &str, hit: bool, started: Instant) {
    if let Some(m) = guard.metrics() {
        let verdict = if hit { "hit" } else { "miss" };
        m.counter(&format!("filter/{stage}/{verdict}")).inc();
    }
    if let Some(h) = guard.histograms() {
        h.hist(&format!("filter/{stage}_us"))
            .record_elapsed_us(started);
    }
}

/// Records the ladder-level outcome: the headline `filter/hit` /
/// `filter/fallthrough` counters and the matching trace instant.
fn note_ladder(guard: &Guard, stage_index: Option<u64>) {
    match stage_index {
        Some(i) => {
            if let Some(m) = guard.metrics() {
                m.counter("filter/hit").inc();
            }
            guard.trace_instant("filter-hit", Some(("stage", i)));
        }
        None => {
            if let Some(m) = guard.metrics() {
                m.counter("filter/fallthrough").inc();
            }
            guard.trace_instant("filter-fallthrough", None);
        }
    }
}

/// Runs the pre-filter ladder on the Lemma 4.3 inclusion `L(a) ⊆ L(b)`,
/// where `a` is the prefix NFA of the behaviors and `b` that of behaviors
/// satisfying the property.
///
/// Stages run in cost order (Parikh, then each mod-k quotient, then the
/// simulation fast-accept); the first decisive stage answers and later
/// stages never run. A fully indecisive ladder returns
/// [`FilterOutcome::Unknown`] — the caller's cue to run the exact decider.
///
/// # Errors
///
/// Propagates guard deadline/cancellation trips from the stage kernels
/// (which never charge states or transitions).
pub fn prefilter_inclusion(a: &Nfa, b: &Nfa, guard: &Guard) -> Result<FilterOutcome, CoreError> {
    let _span = guard.span("prefilter");

    let started = Instant::now();
    let refuted = parikh_refute(a, b, guard)?;
    note_stage(guard, "parikh", refuted.is_some(), started);
    if let Some(w) = refuted {
        note_ladder(guard, Some(0));
        return Ok(FilterOutcome::Refuted(w));
    }

    let started = Instant::now();
    let mut refuted = None;
    for k in modk_moduli() {
        refuted = modk_refute(a, b, k, guard)?;
        if refuted.is_some() {
            break;
        }
    }
    note_stage(guard, "modk", refuted.is_some(), started);
    if let Some(w) = refuted {
        note_ladder(guard, Some(1));
        return Ok(FilterOutcome::Refuted(w));
    }

    let started = Instant::now();
    let proved = nfa_simulates(b, a, guard)?;
    note_stage(guard, "sim", proved, started);
    if proved {
        note_ladder(guard, Some(2));
        return Ok(FilterOutcome::Proved);
    }

    note_ladder(guard, None);
    Ok(FilterOutcome::Unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::{Alphabet, MetricsRegistry, Nfa};

    fn prefix_nfa(ab: &Alphabet, states: usize, edges: &[(usize, &str, usize)]) -> Nfa {
        Nfa::from_parts(
            ab.clone(),
            states,
            [0],
            0..states,
            edges
                .iter()
                .map(|&(p, name, q)| (p, ab.symbol(name).unwrap(), q)),
        )
        .unwrap()
    }

    #[test]
    fn ladder_refutes_proves_and_abstains() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let any = prefix_nfa(&ab, 1, &[(0, "a", 0), (0, "b", 0)]);
        let a_only = prefix_nfa(&ab, 1, &[(0, "a", 0)]);
        let g = Guard::unlimited();
        // Refute: `any` reaches b-words `a_only` cannot.
        match prefilter_inclusion(&any, &a_only, &g).unwrap() {
            FilterOutcome::Refuted(w) => {
                assert!(any.accepts(&w) && !a_only.accepts(&w));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
        // Prove: the inclusion the simulation sees immediately.
        assert_eq!(
            prefilter_inclusion(&a_only, &any, &g).unwrap(),
            FilterOutcome::Proved
        );
    }

    #[test]
    fn counters_track_hits_and_fallthroughs() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let any = prefix_nfa(&ab, 1, &[(0, "a", 0), (0, "b", 0)]);
        let a_only = prefix_nfa(&ab, 1, &[(0, "a", 0)]);
        let m = MetricsRegistry::new();
        let g = Guard::unlimited().with_metrics(m.clone());
        prefilter_inclusion(&any, &a_only, &g).unwrap();
        prefilter_inclusion(&a_only, &any, &g).unwrap();
        let counters: std::collections::BTreeMap<String, u64> = m.counters().into_iter().collect();
        assert_eq!(counters["filter/parikh/hit"], 1);
        assert_eq!(counters["filter/parikh/miss"], 1);
        assert_eq!(counters["filter/sim/hit"], 1);
        assert_eq!(counters["filter/hit"], 2);
        assert!(!counters.contains_key("filter/fallthrough"));
    }

    #[test]
    fn moduli_default_and_parse() {
        // Not a full env-var round trip (tests run in parallel; mutating
        // the process environment would race), just the default path.
        assert_eq!(modk_moduli(), vec![2, 3, 5]);
    }

    #[test]
    fn parse_moduli_accepts_valid_lists_silently() {
        assert_eq!(parse_moduli("4,7"), (vec![4, 7], None));
        assert_eq!(parse_moduli("2 3  5"), (vec![2, 3, 5], None));
        assert_eq!(parse_moduli(""), (vec![2, 3, 5], None));
    }

    #[test]
    fn parse_moduli_warns_on_rejected_tokens() {
        let (ks, warning) = parse_moduli("4,banana,1");
        assert_eq!(ks, vec![4]);
        let msg = warning.expect("partial rejection should warn");
        assert!(msg.contains("RL_FILTER_MODK"), "names the knob: {msg}");
        assert!(msg.contains("banana"), "names the rejected token: {msg}");

        let (ks, warning) = parse_moduli("nope");
        assert_eq!(ks, vec![2, 3, 5]);
        let msg = warning.expect("fully invalid list should warn");
        assert!(msg.contains("[2, 3, 5]"), "names the default: {msg}");

        // Whitespace-only set value: nothing parsable, fall back loudly.
        let (ks, warning) = parse_moduli("  ");
        assert_eq!(ks, vec![2, 3, 5]);
        assert!(warning.is_some());
    }

    #[test]
    fn stage_latencies_land_in_histograms_not_counters() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let any = prefix_nfa(&ab, 1, &[(0, "a", 0), (0, "b", 0)]);
        let a_only = prefix_nfa(&ab, 1, &[(0, "a", 0)]);
        let m = MetricsRegistry::new();
        let h = rl_automata::HistogramRegistry::new();
        let g = Guard::unlimited()
            .with_metrics(m.clone())
            .with_histograms(h.clone());
        prefilter_inclusion(&any, &a_only, &g).unwrap();
        prefilter_inclusion(&a_only, &any, &g).unwrap();
        let snaps = h.snapshot();
        let names: Vec<&str> = snaps.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"filter/parikh_us"), "got {names:?}");
        assert!(names.contains(&"filter/sim_us"), "got {names:?}");
        for (name, snap) in &snaps {
            assert!(snap.count > 0, "{name} recorded no samples");
        }
        // Latency totals must no longer leak into the deterministic
        // counter namespace.
        for (name, _) in m.counters() {
            assert!(!name.ends_with("elapsed_us"), "unexpected counter {name}");
        }
    }
}
