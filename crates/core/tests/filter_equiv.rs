//! Differential tests pinning the semidecision pre-filter ladder to the
//! exact deciders: on the paper's fixtures and on random machines, the
//! relative-liveness verdict must be identical with `Guard::with_filters`
//! on (the default) and off (the CLI's `--no-filters`), across the lazy
//! and eager pipelines, jobs 1 and 4, with and without the op cache.
//!
//! Witnesses are compared by *semantic validity*, never by equality: a
//! ladder refutation is the shortest witness **within its abstraction**
//! (the support path of a Parikh-dead letter, the access word of a missing
//! residue class), which may be longer than the exact decider's globally
//! shortest doomed prefix. Both must replay — accepted by `pre(L_ω)`,
//! rejected by `pre(L_ω ∩ P)` — and that is what is pinned.
//!
//! When the ladder falls through (every stage `Unknown`), the run must be
//! *indistinguishable* from a `--no-filters` run in the four deterministic
//! metric totals: the filter kernels only poll the guard, never charge it.

use std::sync::Arc;

use proptest::prelude::*;
use rl_automata::{
    Alphabet, Guard, Metric, MetricsRegistry, Nfa, OpCache, Pool, Symbol, TransitionSystem, Word,
};
use rl_buchi::behaviors_of_ts_with;
use rl_core::{is_relative_liveness_with, prefilter_inclusion, FilterOutcome, Property};
use rl_logic::parse;

/// Random transition system over `{t0, t1}` with `n` states. Local to this
/// suite: rl-bench's generators live downstream of rl-core and cannot be a
/// dev-dependency here.
fn ts_strategy(n: usize) -> impl Strategy<Value = TransitionSystem> {
    let transitions = proptest::collection::vec((0..n, 0..2usize, 0..n), 1..=(3 * n));
    transitions.prop_map(move |edges| {
        let ab = Alphabet::new(["t0", "t1"]).expect("valid alphabet");
        let mut ts = TransitionSystem::new(ab);
        for _ in 0..n {
            ts.add_state();
        }
        ts.set_initial(0);
        for (p, s, q) in edges {
            ts.add_transition(p, Symbol::from_index(s), q);
        }
        ts
    })
}

/// One relative-liveness check under a configured guard.
struct Run {
    live: bool,
    doomed: Option<Word>,
    /// The four deterministic metric totals.
    metrics: [u64; 4],
    /// Ladder accounting: (hits, fallthroughs) — both zero with filters
    /// off.
    ladder: (u64, u64),
}

fn run_check(
    ts: &TransitionSystem,
    formula: &str,
    filters: bool,
    lazy: bool,
    jobs: usize,
    cache: bool,
) -> Run {
    let prop = Property::formula(parse(formula).expect("formula parses"));
    let reg = MetricsRegistry::new();
    let mut guard = Guard::unlimited()
        .with_filters(filters)
        .with_lazy(lazy)
        .with_metrics(reg.clone());
    if cache {
        guard = guard.with_op_cache(OpCache::new());
    }
    if jobs >= 2 {
        guard = guard.with_pool(Arc::new(Pool::new(jobs)));
    }
    let behaviors = behaviors_of_ts_with(ts, &guard).expect("behaviors");
    let verdict = is_relative_liveness_with(&behaviors, &prop, &guard).expect("rel-live");
    Run {
        live: verdict.holds,
        doomed: verdict.doomed_prefix,
        metrics: [
            reg.total(Metric::States),
            reg.total(Metric::Transitions),
            reg.total(Metric::CacheHits),
            reg.total(Metric::GuardCharges),
        ],
        ladder: (
            reg.counter("filter/hit").get(),
            reg.counter("filter/fallthrough").get(),
        ),
    }
}

/// Replays a doomed prefix against the Lemma 4.3 inclusion: in `pre(L_ω)`,
/// not in `pre(L_ω ∩ P)`.
fn assert_doomed_valid(ts: &TransitionSystem, formula: &str, doomed: &Word) {
    let prop = Property::formula(parse(formula).expect("formula parses"));
    let guard = Guard::unlimited();
    let behaviors = behaviors_of_ts_with(ts, &guard).expect("behaviors");
    let p = prop
        .to_buchi(behaviors.alphabet())
        .expect("property to Büchi");
    let both = behaviors.intersection(&p).expect("intersection");
    assert!(
        behaviors.prefix_nfa().accepts(doomed),
        "doomed prefix not a prefix of any behavior: {doomed:?}"
    );
    assert!(
        !both.prefix_nfa().accepts(doomed),
        "doomed prefix extends into P: {doomed:?}"
    );
}

/// The core contract: same verdict with the ladder on and off; valid
/// witnesses on both sides; bit-for-bit deterministic metrics whenever the
/// ladder fell through (or never ran).
fn assert_filters_sound(ts: &TransitionSystem, formula: &str, on: &Run, off: &Run) {
    assert_eq!(on.live, off.live, "filters flipped the verdict ({formula})");
    assert_eq!(off.ladder, (0, 0), "a --no-filters run must not ladder");
    for run in [on, off] {
        if let Some(w) = &run.doomed {
            assert_doomed_valid(ts, formula, w);
        }
    }
    // Witness presence agrees with the verdict on both sides.
    assert_eq!(on.doomed.is_some(), !on.live);
    assert_eq!(off.doomed.is_some(), !off.live);
    if on.ladder.0 == 0 {
        // Pure fall-through: the ladder left no trace in the deterministic
        // totals — the kernels only poll, never charge.
        assert_eq!(
            on.metrics, off.metrics,
            "fall-through run diverged from --no-filters metrics ({formula})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random systems: the filtered pipeline agrees with `--no-filters`
    /// across both exact pipelines, jobs 1/4, and op-cache on/off.
    #[test]
    fn random_systems_agree_with_and_without_filters(
        ts in ts_strategy(5),
        formula in proptest::sample::select(&["[]<>t0", "<>t1", "[]t0", "[]<>t1"][..]),
    ) {
        let off = run_check(&ts, formula, false, true, 1, true);
        for lazy in [true, false] {
            for jobs in [1, 4] {
                for cache in [true, false] {
                    let on = run_check(&ts, formula, true, lazy, jobs, cache);
                    // The eager reference for metric comparison must match
                    // the run's own pipeline/cache configuration.
                    let reference = run_check(&ts, formula, false, lazy, jobs, cache);
                    assert_filters_sound(&ts, formula, &on, &reference);
                    prop_assert_eq!(on.live, off.live, "verdict depends on configuration");
                }
            }
        }
    }
}

#[test]
fn fixtures_agree_with_and_without_filters() {
    for (ts, formula) in [
        (rl_petri::examples::server_behaviors(), "[]<>result"),
        (rl_petri::examples::server_err_behaviors(), "[]<>result"),
    ] {
        for lazy in [true, false] {
            let on = run_check(&ts, formula, true, lazy, 1, true);
            let off = run_check(&ts, formula, false, lazy, 1, true);
            assert_filters_sound(&ts, formula, &on, &off);
        }
    }
}

#[test]
fn ladder_refutations_replay_on_the_fixture_that_fails() {
    // server_err is *not* rel-live for []<>result; whatever stage answers,
    // the witness must replay against the exact inclusion.
    let ts = rl_petri::examples::server_err_behaviors();
    let run = run_check(&ts, "[]<>result", true, true, 1, true);
    assert!(!run.live);
    let w = run.doomed.as_ref().expect("refutation carries a witness");
    assert_doomed_valid(&ts, "[]<>result", w);
}

#[test]
fn ladder_outcomes_are_deterministic_across_jobs_and_cache() {
    // The ladder itself is sequential and unmetered, so its hit/fallthrough
    // accounting — and the witness it returns — cannot depend on the pool
    // or the op cache.
    let ts = rl_petri::examples::server_err_behaviors();
    let base = run_check(&ts, "[]<>result", true, true, 1, true);
    for (jobs, cache) in [(1, false), (4, true), (4, false)] {
        let other = run_check(&ts, "[]<>result", true, true, jobs, cache);
        assert_eq!(base.ladder, other.ladder);
        assert_eq!(base.doomed, other.doomed);
    }
}

#[test]
fn prefilter_outcomes_match_exact_inclusion_on_random_nfas() {
    // Direct ladder-level differential: on random prefix-closed NFAs the
    // ladder's Proved/Refuted answers are always consistent with the exact
    // subset-construction inclusion (Unknown is always allowed).
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let ab = Alphabet::new(["a", "b"]).expect("valid alphabet");
    let guard = Guard::unlimited();
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for _ in 0..200 {
        let mut make = |n: usize| {
            let edges: Vec<(usize, Symbol, usize)> = (0..rng.gen_range(1..3 * n + 1))
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        Symbol::from_index(rng.gen_range(0..2)),
                        rng.gen_range(0..n),
                    )
                })
                .collect();
            // All states accepting: the ladder's inputs are prefix NFAs.
            Nfa::from_parts(ab.clone(), n, [0], 0..n, edges).expect("indices in range")
        };
        let a = make(4);
        let b = make(4);
        let exact = rl_automata::dfa_included(&a.determinize(), &b.determinize());
        match prefilter_inclusion(&a, &b, &guard).expect("unlimited guard") {
            FilterOutcome::Proved => {
                assert!(exact.is_none(), "ladder proved a failing inclusion");
            }
            FilterOutcome::Refuted(w) => {
                assert!(exact.is_some(), "ladder refuted a holding inclusion");
                assert!(a.accepts(&w) && !b.accepts(&w), "witness fails replay");
            }
            FilterOutcome::Unknown => {}
        }
    }
}
