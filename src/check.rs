//! The shared check pipeline behind `rlcheck check`, `rlcheck batch`, and
//! `rlcheck serve`.
//!
//! One check — parse a system, parse a formula, decide classical
//! satisfaction plus relative liveness/safety under a [`Guard`] — is the
//! same work whether it arrives as a CLI invocation, a line of a batch
//! manifest, or a `submit` request on the service socket. This module is
//! that single implementation: the front ends differ only in where the
//! system text comes from ([`SystemSource`]), which guard they assemble,
//! and where the buffered report goes.
//!
//! Everything here writes into caller-supplied `String` buffers instead of
//! the process streams, so concurrent checks (batch jobs, service jobs)
//! can run on pool workers and still be printed — or shipped over a
//! socket — in a deterministic order.

use std::fmt::Write;
use std::time::Duration;

use rl_automata::{fault, format_word, TransitionSystem};
use rl_buchi::behaviors_of_ts_with;
use rl_core::{
    is_relative_liveness_with, is_relative_safety_with, satisfies_with, CheckError, Guard, Property,
};
use rl_logic::{parse, Formula};

use crate::format::parse_system;

/// Where a check's system description comes from.
///
/// The CLI reads files; the service accepts the system text inline over the
/// wire (a daemon should not trust or require a shared filesystem with its
/// clients).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemSource {
    /// A path on the local filesystem, in the `system`/`petri` formats of
    /// [`crate::format`].
    Path(String),
    /// System text shipped inline, plus a display name for reports.
    Inline {
        /// Name shown in reports and diagnostics (a client-chosen label).
        name: String,
        /// The system description itself.
        text: String,
    },
}

impl SystemSource {
    /// The name used in report headers and error messages.
    pub fn display_name(&self) -> &str {
        match self {
            SystemSource::Path(p) => p,
            SystemSource::Inline { name, .. } => name,
        }
    }

    /// Parses the system, reading it from disk first if needed.
    pub fn load(&self) -> Result<TransitionSystem, CheckError> {
        let name = self.display_name();
        let text = match self {
            SystemSource::Path(path) => std::fs::read_to_string(path)
                .map_err(|e| CheckError::Parse(format!("{path}: {e}")))?,
            SystemSource::Inline { text, .. } => text.clone(),
        };
        parse_system(&text).map_err(|e| CheckError::Parse(format!("{name}: {e}")))
    }
}

/// One check: a system and a formula to decide against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSpec {
    /// The system under check.
    pub source: SystemSource,
    /// The PLTL property, unparsed.
    pub formula: String,
}

impl CheckSpec {
    /// A check of a system file on disk.
    pub fn from_path(path: impl Into<String>, formula: impl Into<String>) -> CheckSpec {
        CheckSpec {
            source: SystemSource::Path(path.into()),
            formula: formula.into(),
        }
    }
}

/// Parses a PLTL formula, mapping the error into [`CheckError::Parse`].
pub fn parse_formula(formula: &str) -> Result<Formula, CheckError> {
    parse(formula).map_err(|e| CheckError::Parse(e.to_string()))
}

/// `HOLDS`/`fails`, the verdict vocabulary of every report.
pub fn verdict(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "fails"
    }
}

/// Severity order for aggregating exit codes across jobs: panic > budget >
/// usage/input error > property failure > success.
pub fn severity(code: u8) -> u8 {
    match code {
        101 => 4,
        3 => 3,
        2 => 2,
        1 => 1,
        _ => 0,
    }
}

/// The larger of two exit codes under the [`severity`] order (ties keep the
/// current value).
pub fn worst_exit(current: u8, new: u8) -> u8 {
    if severity(new) > severity(current) {
        new
    } else {
        current
    }
}

/// The fair share of a batch's remaining deadline for the next job to start.
///
/// `remaining` is the wall clock left on the whole batch *right now*,
/// `unfinished` the number of jobs not yet completed (including the one
/// about to start), and `threads` the pool width. The unfinished jobs run
/// in about `ceil(unfinished / threads)` scheduling waves, so the next
/// job's slice is `remaining / waves` — recomputed from the live clock at
/// every job start. A job that finishes early therefore shrinks
/// `unfinished` (fewer waves) while leaving `remaining` nearly untouched:
/// its unused slice is *donated* to the jobs that start after it instead of
/// stranded. With at least as many threads as unfinished jobs there is one
/// wave and every job gets the full remaining time, which is also the
/// single-job behavior.
pub fn batch_job_deadline(remaining: Duration, unfinished: usize, threads: usize) -> Duration {
    let waves = unfinished.max(1).div_ceil(threads.max(1));
    remaining / waves as u32
}

/// The `check` pipeline, writing its report into `out` (so batch and
/// service modes can run checks concurrently and still emit them in a
/// deterministic order). Returns whether relative liveness holds.
pub fn run_check(spec: &CheckSpec, guard: &Guard, out: &mut String) -> Result<bool, CheckError> {
    let _span = guard.span("check");
    let ts = spec.source.load()?;
    let eta = parse_formula(&spec.formula)?;
    let behaviors = behaviors_of_ts_with(&ts, guard).map_err(CheckError::from)?;
    // Test hooks: let the CLI/service tests exercise the panic-containment
    // paths with real partial state (some spans closed, some charges
    // recorded) and assert the observability sinks still flush parseable
    // output. `RL_TEST_PANIC` fires on every check; the `check-panic` fault
    // point fires on exactly the armed occurrence.
    if std::env::var_os("RL_TEST_PANIC").is_some() {
        panic!("injected panic (RL_TEST_PANIC)");
    }
    if fault::fires("check-panic") {
        panic!("injected panic (RL_FAULT=check-panic)");
    }
    let prop = Property::formula(eta.clone());

    let sat = satisfies_with(&behaviors, &prop, guard)?;
    let _ = writeln!(out, "classical  {eta}: {}", verdict(sat.holds));
    if let Some(x) = sat.counterexample {
        let _ = writeln!(
            out,
            "           counterexample: {}",
            x.display(ts.alphabet())
        );
    }
    let rl = is_relative_liveness_with(&behaviors, &prop, guard)?;
    let _ = writeln!(out, "rel-live   {eta}: {}", verdict(rl.holds));
    if let Some(w) = &rl.doomed_prefix {
        let _ = writeln!(
            out,
            "           doomed prefix: {}",
            format_word(ts.alphabet(), w)
        );
    }
    let rs = is_relative_safety_with(&behaviors, &prop, guard)?;
    let _ = writeln!(out, "rel-safe   {eta}: {}", verdict(rs.holds));
    if let Some(x) = rs.escaping_behavior {
        let _ = writeln!(
            out,
            "           escaping behavior: {}",
            x.display(ts.alphabet())
        );
    }
    Ok(rl.holds)
}

/// Runs one check against `guard`, writing the report to `out` and
/// diagnostics to `err`; returns the job's exit code (same scheme as the
/// process exit codes: 0 holds, 1 fails, 2 input error, 3 budget).
pub fn report_check(spec: &CheckSpec, guard: &Guard, out: &mut String, err: &mut String) -> u8 {
    let name = spec.source.display_name();
    let _ = writeln!(out, "=== {} {}", name, spec.formula);
    match run_check(spec, guard, out) {
        Ok(true) => 0,
        Ok(false) => 1,
        Err(e @ CheckError::BudgetExceeded { .. }) | Err(e @ CheckError::Cancelled { .. }) => {
            let _ = writeln!(
                err,
                "rlcheck: [{name}] resource budget exhausted before a verdict was reached"
            );
            let _ = writeln!(err, "rlcheck: {e}");
            3
        }
        Err(e) => {
            let _ = writeln!(err, "rlcheck: [{name}] {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_panic_over_budget_over_usage() {
        let codes = [0u8, 1, 2, 3, 101];
        for window in codes.windows(2) {
            assert!(severity(window[0]) < severity(window[1]));
        }
        assert_eq!(worst_exit(3, 1), 3);
        assert_eq!(worst_exit(1, 101), 101);
        assert_eq!(worst_exit(0, 0), 0);
    }

    #[test]
    fn deadline_split_gives_full_remaining_when_one_wave() {
        let remaining = Duration::from_secs(30);
        // As many threads as jobs: a single wave, full remaining each.
        assert_eq!(batch_job_deadline(remaining, 4, 4), remaining);
        assert_eq!(batch_job_deadline(remaining, 1, 1), remaining);
        // More threads than jobs changes nothing.
        assert_eq!(batch_job_deadline(remaining, 2, 8), remaining);
    }

    #[test]
    fn deadline_split_divides_by_scheduling_waves() {
        let remaining = Duration::from_secs(30);
        // 4 jobs on 2 threads: two waves, half the remaining each.
        assert_eq!(batch_job_deadline(remaining, 4, 2), Duration::from_secs(15));
        // 5 jobs on 2 threads: three waves.
        assert_eq!(batch_job_deadline(remaining, 5, 2), Duration::from_secs(10));
    }

    #[test]
    fn deadline_split_donates_unused_time_as_jobs_finish() {
        // 4 jobs, 1 thread, 40s: the first job is offered 10s. If it takes
        // only 2s, the next job sees 38s remaining across 3 unfinished jobs
        // and is offered ~12.6s — strictly more than its original 10s share.
        let first = batch_job_deadline(Duration::from_secs(40), 4, 1);
        assert_eq!(first, Duration::from_secs(10));
        let second = batch_job_deadline(Duration::from_secs(38), 3, 1);
        assert!(second > first, "{second:?} should exceed {first:?}");
    }

    #[test]
    fn deadline_split_never_divides_by_zero() {
        assert_eq!(batch_job_deadline(Duration::ZERO, 0, 0), Duration::ZERO);
        assert_eq!(
            batch_job_deadline(Duration::from_secs(7), 0, 3),
            Duration::from_secs(7)
        );
    }

    #[test]
    fn inline_sources_parse_like_files() {
        let text = "system\nalphabet: go\ninitial: a\na go -> b\n";
        let inline = SystemSource::Inline {
            name: "wire:1".to_owned(),
            text: text.to_owned(),
        };
        assert_eq!(inline.display_name(), "wire:1");
        let ts = inline.load().expect("inline system parses");
        assert_eq!(ts.state_count(), 2);
    }
}
