//! `rlcheck top` — a live per-job view of a running `rlcheck serve`
//! daemon.
//!
//! The client side of the telemetry plane: connects to the daemon's
//! socket, issues a `subscribe` (all jobs by default, one job with
//! `--job`), and renders the streamed heartbeat/trace events as a
//! refreshing per-job table on stderr — states/sec, current phase, budget
//! consumption, cache hit rate. When stderr is not a TTY the refresh
//! degrades to plain line output (one line per heartbeat/completion), so
//! `rlcheck top ... 2> capture.log` leaves a readable, greppable record —
//! and the captured stream itself replays through `rlcheck report`.
//!
//! The daemon's drain closes the stream (EOF), which `top` treats as a
//! normal exit; so does SIGINT via the shared cancel token.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, IsTerminal, Read, Write as IoWrite};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use rl_automata::CancelToken;
use rl_core::CheckError;
use rl_json::{FromJson, Json};
use rl_obs::{Heartbeat, HistogramSnapshot, TraceEvent, TracePhase};

/// One row of the live table: the latest observed state of a job.
#[derive(Default)]
struct JobRow {
    /// The most recent heartbeat, verbatim.
    last: Option<Heartbeat>,
    /// Heartbeats seen for this job.
    beats: u64,
    /// Trace events seen for this job.
    traces: u64,
    /// Open `span` begin names per track — the top of the most recently
    /// touched non-empty stack is the displayed phase.
    stacks: BTreeMap<u64, Vec<String>>,
    /// The currently displayed phase name.
    phase: String,
    /// The most recent algorithm instant (`lazy-*` / `filter-*`), shown
    /// beside the phase — "what the kernel just did" at one glance.
    note: String,
    /// Latest cumulative histogram snapshot per family, from streamed
    /// `hist` events. Each event replaces its family (snapshots are
    /// cumulative, so latest-wins is idempotent under redelivery).
    hists: Vec<(String, HistogramSnapshot)>,
    /// The exit code from the job's `done` record, once it settles.
    done: Option<u64>,
}

impl JobRow {
    fn budget_pct(&self) -> Option<u64> {
        let hb = self.last.as_ref()?;
        let states = hb
            .states_limit
            .map(|max| 100 * hb.states / max.max(1))
            .unwrap_or(0);
        let time = hb
            .deadline_us
            .map(|d| 100 * hb.elapsed_us / d.max(1))
            .unwrap_or(0);
        (hb.states_limit.is_some() || hb.deadline_us.is_some()).then_some(states.max(time))
    }

    fn cache_pct(&self) -> Option<u64> {
        let hb = self.last.as_ref()?;
        let (hits, misses) = (hb.cache_hits?, hb.cache_misses?);
        (hits + misses > 0).then(|| 100 * hits / (hits + misses))
    }

    fn status(&self) -> String {
        match self.done {
            Some(code) => format!("done({code})"),
            None => "running".to_owned(),
        }
    }

    /// Merges the job's streamed histogram families into one distribution
    /// (all families are microsecond latencies, so quantiles over the
    /// union answer "how slow are this job's instrumented operations").
    /// `None` until the first `hist` event with a sample arrives.
    fn merged_hist(&self) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for (_, snap) in &self.hists {
            if snap.count == 0 {
                continue;
            }
            match &mut merged {
                Some(m) => m.merge(snap),
                None => merged = Some(snap.clone()),
            }
        }
        merged
    }
}

/// The accumulated view over the subscribe stream.
#[derive(Default)]
struct TopView {
    jobs: BTreeMap<u64, JobRow>,
    dropped: u64,
    dirty: bool,
}

impl TopView {
    /// Folds one streamed line into the view. Returns a plain-mode output
    /// line when the event warrants one (heartbeats and completions).
    fn take_line(&mut self, line: &str) -> Option<String> {
        let value = rl_json::parse(line).ok()?;
        let event = match value.get("event") {
            Some(Json::Str(s)) => s.clone(),
            // Reply acks ({"ok":...}) and anything non-event: ignore,
            // except a refused subscribe which the caller screens earlier.
            _ => return None,
        };
        match event.as_str() {
            "heartbeat" => {
                let hb = Heartbeat::from_json(&value).ok()?;
                let job = hb.job?;
                let row = self.jobs.entry(job).or_default();
                row.beats += 1;
                let text = format!("job {job}: {}", hb.render_line());
                row.last = Some(hb);
                self.dirty = true;
                Some(text)
            }
            "trace" => {
                let e = TraceEvent::from_json(&value).ok()?;
                let job = u64_field(&value, "job")?;
                let row = self.jobs.entry(job).or_default();
                row.traces += 1;
                if e.category == "span" {
                    let stack = row.stacks.entry(e.track as u64).or_default();
                    match e.phase {
                        TracePhase::Begin => {
                            stack.push(e.name.clone());
                            row.phase = e.name;
                        }
                        TracePhase::End => {
                            stack.pop();
                            row.phase = stack.last().cloned().unwrap_or_default();
                        }
                        TracePhase::Instant => {}
                    }
                    self.dirty = true;
                } else if e.phase == TracePhase::Instant
                    && (e.name.starts_with("lazy-") || e.name.starts_with("filter-"))
                {
                    // The fused search and the pre-filter ladder narrate
                    // themselves through kernel instants; surface the latest
                    // one beside the phase.
                    row.note = e.name;
                    self.dirty = true;
                }
                None
            }
            "done" => {
                let job = u64_field(&value, "job")?;
                let code = u64_field(&value, "code").unwrap_or(0);
                self.jobs.entry(job).or_default().done = Some(code);
                self.dirty = true;
                Some(format!("job {job}: done code {code}"))
            }
            "hist" => {
                let job = u64_field(&value, "job")?;
                let name = match value.get("name") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => return None,
                };
                let snap = HistogramSnapshot::from_json(&value).ok()?;
                let row = self.jobs.entry(job).or_default();
                match row.hists.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, old)) => *old = snap,
                    None => row.hists.push((name, snap)),
                }
                self.dirty = true;
                None // percentiles render in the table, not as plain lines
            }
            "dropped" => {
                if let Some(n) = u64_field(&value, "count") {
                    self.dropped += n;
                    self.dirty = true;
                    return Some(format!("({n} event(s) dropped to backpressure)"));
                }
                None
            }
            _ => None, // unknown future kinds: skip, like `rlcheck report`
        }
    }

    /// The full-screen table (TTY mode). `daemon` is the latest `stats`
    /// poll, rendered as a footer when available.
    fn render(&self, socket: &str, daemon: Option<&DaemonStats>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rlcheck top — {socket} — {} job(s), {} event(s) dropped",
            self.jobs.len(),
            self.dropped
        );
        let _ = writeln!(
            out,
            "{:>5}  {:<9} {:>9} {:>12} {:>10} {:>9} {:>7} {:>7} {:>8} {:>8}  PHASE",
            "JOB",
            "STATUS",
            "ELAPSED",
            "STATES",
            "RATE/S",
            "FRONTIER",
            "BUDGET%",
            "CACHE%",
            "P50US",
            "P99US"
        );
        for (id, row) in &self.jobs {
            let hb = row.last.as_ref();
            let merged = row.merged_hist();
            let _ = writeln!(
                out,
                "{:>5}  {:<9} {:>8.1}s {:>12} {:>10} {:>9} {:>7} {:>7} {:>8} {:>8}  {}",
                id,
                row.status(),
                hb.map_or(0.0, |h| h.elapsed_us as f64 / 1e6),
                hb.map_or(0, |h| h.states),
                hb.map_or(0, Heartbeat::states_per_sec),
                hb.map_or(0, |h| h.frontier),
                row.budget_pct()
                    .map_or_else(|| "-".to_owned(), |p| p.to_string()),
                row.cache_pct()
                    .map_or_else(|| "-".to_owned(), |p| p.to_string()),
                merged
                    .as_ref()
                    .map_or_else(|| "-".to_owned(), |h| h.p50().to_string()),
                merged
                    .as_ref()
                    .map_or_else(|| "-".to_owned(), |h| h.p99().to_string()),
                if row.note.is_empty() {
                    row.phase.clone()
                } else {
                    format!("{} [{}]", row.phase, row.note)
                }
            );
        }
        if let Some(d) = daemon {
            let _ = writeln!(out, "{}", d.footer());
        }
        out
    }
}

/// Daemon-level gauges from the `stats` verb, polled on a side connection
/// (the subscribe stream carries per-job events only).
struct DaemonStats {
    uptime_ms: u64,
    subscribers: u64,
    events_dropped: u64,
}

impl DaemonStats {
    /// Parses a `stats` reply line; `None` when it is not an ok-reply.
    fn parse(line: &str) -> Option<DaemonStats> {
        let v = rl_json::parse(line).ok()?;
        if v.get("ok") != Some(&Json::Bool(true)) {
            return None;
        }
        Some(DaemonStats {
            uptime_ms: u64_field(&v, "uptime_ms")?,
            subscribers: u64_field(&v, "subscribers").unwrap_or(0),
            events_dropped: u64_field(&v, "events_dropped").unwrap_or(0),
        })
    }

    fn footer(&self) -> String {
        format!(
            "daemon: up {:.1}s, {} subscriber(s), {} event(s) dropped daemon-wide",
            self.uptime_ms as f64 / 1e3,
            self.subscribers,
            self.events_dropped
        )
    }
}

/// One `stats` round-trip on a fresh connection. Any failure (daemon
/// draining, timeout) degrades to `None`; the footer just keeps its last
/// value.
fn poll_stats(socket: &str) -> Option<DaemonStats> {
    let mut stream = UnixStream::connect(socket).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    stream.write_all(b"{\"cmd\":\"stats\"}\n").ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    DaemonStats::parse(line.trim())
}

fn u64_field(v: &Json, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Connects to a serve socket, subscribes (`job` restricts to one id), and
/// renders the live stream until the daemon drains (EOF) or `cancel` fires
/// (SIGINT). Returns the process exit code: 0 on a clean stream end.
///
/// # Errors
///
/// [`CheckError::Parse`] when the socket cannot be reached or the daemon
/// refuses the subscription.
pub fn run_top(socket: &str, job: Option<u64>, cancel: &CancelToken) -> Result<u8, CheckError> {
    let mut stream = UnixStream::connect(socket)
        .map_err(|e| CheckError::Parse(format!("top: {socket}: {e}")))?;
    let request = match job {
        Some(id) => format!("{{\"cmd\":\"subscribe\",\"id\":{id}}}\n"),
        None => "{\"cmd\":\"subscribe\",\"id\":\"*\"}\n".to_owned(),
    };
    stream
        .write_all(request.as_bytes())
        .map_err(|e| CheckError::Parse(format!("top: {socket}: {e}")))?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));

    let live = std::io::stderr().is_terminal();
    let mut view = TopView::default();
    let mut acked = false;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Daemon-level stats ride a side connection, refreshed about once a
    // second; a failed poll keeps the previous footer rather than blanking.
    let mut daemon: Option<DaemonStats> = None;
    let mut last_poll: Option<Instant> = None;
    loop {
        if cancel.is_cancelled() {
            break;
        }
        if last_poll.is_none_or(|t| t.elapsed() >= Duration::from_secs(1)) {
            last_poll = Some(Instant::now());
            if let Some(stats) = poll_stats(socket) {
                daemon = Some(stats);
                view.dirty = true;
            }
        }
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !acked {
                // The first line is the subscribe reply.
                acked = true;
                let v = rl_json::parse(line)
                    .map_err(|e| CheckError::Parse(format!("top: bad reply: {e}")))?;
                if v.get("ok") != Some(&Json::Bool(true)) {
                    return Err(CheckError::Parse(format!("top: subscribe refused: {line}")));
                }
                continue;
            }
            let plain = view.take_line(line);
            if !live {
                if let Some(text) = plain {
                    eprintln!("{text}");
                }
            }
        }
        if live && view.dirty {
            view.dirty = false;
            // Clear and redraw: home the cursor, wipe, print the table.
            eprint!("\x1b[H\x1b[2J{}", view.render(socket, daemon.as_ref()));
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // daemon drained: clean end of stream
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    if live {
        eprint!("{}", view.render(socket, daemon.as_ref()));
    } else {
        let done = view.jobs.values().filter(|r| r.done.is_some()).count();
        eprintln!(
            "rlcheck top: stream closed ({} job(s) observed, {} finished, {} event(s) dropped)",
            view.jobs.len(),
            done,
            view.dropped
        );
        if let Some(d) = &daemon {
            eprintln!("rlcheck top: {}", d.footer());
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_tracks_phase_budget_and_completion() {
        let mut view = TopView::default();
        assert!(view
            .take_line(
                "{\"event\":\"trace\",\"job\":1,\"ph\":\"B\",\"track\":0,\
                 \"cat\":\"span\",\"name\":\"determinize\",\"ts_us\":5}"
            )
            .is_none());
        let plain = view.take_line(
            "{\"event\":\"heartbeat\",\"job\":1,\"elapsed_us\":2000000,\
             \"states\":81920,\"transitions\":1,\"frontier\":4096,\
             \"states_limit\":200000,\"cache_hits\":97,\"cache_misses\":3}",
        );
        assert!(plain
            .expect("heartbeats emit plain lines")
            .contains("81920 states"));
        let row = view.jobs.get(&1).expect("job row exists");
        assert_eq!(row.phase, "determinize");
        assert_eq!(row.budget_pct(), Some(40));
        assert_eq!(row.cache_pct(), Some(97));
        assert_eq!(row.status(), "running");
        let done = view.take_line("{\"event\":\"done\",\"job\":1,\"code\":0}");
        assert_eq!(done.as_deref(), Some("job 1: done code 0"));
        assert_eq!(view.jobs[&1].status(), "done(0)");
        let table = view.render("/tmp/x.sock", None);
        assert!(table.contains("done(0)"), "{table}");
        assert!(table.contains("determinize"), "{table}");
    }

    #[test]
    fn hist_events_surface_percentile_columns() {
        let mut view = TopView::default();
        // Before any hist event: dashes in the percentile columns.
        view.take_line("{\"event\":\"done\",\"job\":7,\"code\":0}");
        assert!(view.render("s", None).contains('-'));
        // A cumulative snapshot: 10 samples at exactly 4µs (buckets 0-7
        // are exact, so p50 = p99 = 4).
        let replaced = "{\"event\":\"hist\",\"job\":7,\"name\":\"filter/parikh_us\",\
             \"count\":10,\"sum\":40,\"max\":4,\"buckets\":[[4,10]]}";
        assert!(view.take_line(replaced).is_none(), "no plain line");
        let row = view.jobs.get(&7).expect("row");
        let merged = row.merged_hist().expect("merged hist");
        assert_eq!((merged.p50(), merged.p99()), (4, 4));
        // A newer snapshot for the same family replaces, never doubles.
        view.take_line(replaced);
        assert_eq!(view.jobs[&7].merged_hist().expect("hist").count, 10);
        // A second family merges into the displayed distribution.
        view.take_line(
            "{\"event\":\"hist\",\"job\":7,\"name\":\"filter/sim_us\",\
             \"count\":2,\"sum\":12,\"max\":6,\"buckets\":[[6,2]]}",
        );
        assert_eq!(view.jobs[&7].merged_hist().expect("hist").count, 12);
        let table = view.render("s", None);
        assert!(table.contains("P50US"), "{table}");
    }

    #[test]
    fn daemon_stats_parse_and_footer() {
        let stats = DaemonStats::parse(
            "{\"ok\":true,\"uptime_ms\":2500,\"subscribers\":3,\"events_dropped\":9}",
        )
        .expect("parses ok reply");
        assert_eq!(
            stats.footer(),
            "daemon: up 2.5s, 3 subscriber(s), 9 event(s) dropped daemon-wide"
        );
        assert!(DaemonStats::parse("{\"ok\":false,\"error\":\"x\"}").is_none());
        assert!(DaemonStats::parse("not json").is_none());
        // The footer rides the rendered table when stats are known.
        let view = TopView::default();
        assert!(view.render("s", Some(&stats)).contains("daemon: up 2.5s"));
    }

    #[test]
    fn view_surfaces_algorithm_instants_beside_the_phase() {
        let mut view = TopView::default();
        view.take_line(
            "{\"event\":\"trace\",\"job\":3,\"ph\":\"B\",\"track\":0,\
             \"cat\":\"span\",\"name\":\"prefilter\",\"ts_us\":1}",
        );
        view.take_line(
            "{\"event\":\"trace\",\"job\":3,\"ph\":\"I\",\"track\":0,\
             \"cat\":\"kernel\",\"name\":\"filter-hit\",\"ts_us\":2,\
             \"arg\":{\"stage\":2}}",
        );
        let table = view.render("/tmp/x.sock", None);
        assert!(table.contains("prefilter [filter-hit]"), "{table}");
        // Lazy pipeline instants surface the same way.
        view.take_line(
            "{\"event\":\"trace\",\"job\":3,\"ph\":\"I\",\"track\":0,\
             \"cat\":\"kernel\",\"name\":\"lazy-prune\",\"ts_us\":3,\
             \"arg\":{\"count\":7}}",
        );
        assert!(view.render("s", None).contains("prefilter [lazy-prune]"));
        // Other kernel instants (layer widths of eager constructions) are
        // not phase narration and stay out of the column.
        view.jobs.get_mut(&3).expect("row").note.clear();
        view.take_line(
            "{\"event\":\"trace\",\"job\":3,\"ph\":\"I\",\"track\":0,\
             \"cat\":\"kernel\",\"name\":\"determinize-layer\",\"ts_us\":4}",
        );
        assert!(!view.render("s", None).contains("[determinize-layer]"));
    }

    #[test]
    fn view_skips_unknown_kinds_and_counts_drops() {
        let mut view = TopView::default();
        assert!(view.take_line("{\"event\":\"frob\",\"x\":1}").is_none());
        assert!(view.take_line("{\"ok\":true}").is_none());
        let note = view.take_line("{\"event\":\"dropped\",\"count\":4,\"total\":4}");
        assert!(note.expect("drop notice").contains("4 event(s) dropped"));
        assert_eq!(view.dropped, 4);
        assert!(view.jobs.is_empty());
    }
}
