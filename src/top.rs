//! `rlcheck top` — a live per-job view of a running `rlcheck serve`
//! daemon.
//!
//! The client side of the telemetry plane: connects to the daemon's
//! socket, issues a `subscribe` (all jobs by default, one job with
//! `--job`), and renders the streamed heartbeat/trace events as a
//! refreshing per-job table on stderr — states/sec, current phase, budget
//! consumption, cache hit rate. When stderr is not a TTY the refresh
//! degrades to plain line output (one line per heartbeat/completion), so
//! `rlcheck top ... 2> capture.log` leaves a readable, greppable record —
//! and the captured stream itself replays through `rlcheck report`.
//!
//! The daemon's drain closes the stream (EOF), which `top` treats as a
//! normal exit; so does SIGINT via the shared cancel token.

use std::collections::BTreeMap;
use std::io::{ErrorKind, IsTerminal, Read, Write as IoWrite};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use rl_automata::CancelToken;
use rl_core::CheckError;
use rl_json::{FromJson, Json};
use rl_obs::{Heartbeat, TraceEvent, TracePhase};

/// One row of the live table: the latest observed state of a job.
#[derive(Default)]
struct JobRow {
    /// The most recent heartbeat, verbatim.
    last: Option<Heartbeat>,
    /// Heartbeats seen for this job.
    beats: u64,
    /// Trace events seen for this job.
    traces: u64,
    /// Open `span` begin names per track — the top of the most recently
    /// touched non-empty stack is the displayed phase.
    stacks: BTreeMap<u64, Vec<String>>,
    /// The currently displayed phase name.
    phase: String,
    /// The most recent algorithm instant (`lazy-*` / `filter-*`), shown
    /// beside the phase — "what the kernel just did" at one glance.
    note: String,
    /// The exit code from the job's `done` record, once it settles.
    done: Option<u64>,
}

impl JobRow {
    fn budget_pct(&self) -> Option<u64> {
        let hb = self.last.as_ref()?;
        let states = hb
            .states_limit
            .map(|max| 100 * hb.states / max.max(1))
            .unwrap_or(0);
        let time = hb
            .deadline_us
            .map(|d| 100 * hb.elapsed_us / d.max(1))
            .unwrap_or(0);
        (hb.states_limit.is_some() || hb.deadline_us.is_some()).then_some(states.max(time))
    }

    fn cache_pct(&self) -> Option<u64> {
        let hb = self.last.as_ref()?;
        let (hits, misses) = (hb.cache_hits?, hb.cache_misses?);
        (hits + misses > 0).then(|| 100 * hits / (hits + misses))
    }

    fn status(&self) -> String {
        match self.done {
            Some(code) => format!("done({code})"),
            None => "running".to_owned(),
        }
    }
}

/// The accumulated view over the subscribe stream.
#[derive(Default)]
struct TopView {
    jobs: BTreeMap<u64, JobRow>,
    dropped: u64,
    dirty: bool,
}

impl TopView {
    /// Folds one streamed line into the view. Returns a plain-mode output
    /// line when the event warrants one (heartbeats and completions).
    fn take_line(&mut self, line: &str) -> Option<String> {
        let value = rl_json::parse(line).ok()?;
        let event = match value.get("event") {
            Some(Json::Str(s)) => s.clone(),
            // Reply acks ({"ok":...}) and anything non-event: ignore,
            // except a refused subscribe which the caller screens earlier.
            _ => return None,
        };
        match event.as_str() {
            "heartbeat" => {
                let hb = Heartbeat::from_json(&value).ok()?;
                let job = hb.job?;
                let row = self.jobs.entry(job).or_default();
                row.beats += 1;
                let text = format!("job {job}: {}", hb.render_line());
                row.last = Some(hb);
                self.dirty = true;
                Some(text)
            }
            "trace" => {
                let e = TraceEvent::from_json(&value).ok()?;
                let job = u64_field(&value, "job")?;
                let row = self.jobs.entry(job).or_default();
                row.traces += 1;
                if e.category == "span" {
                    let stack = row.stacks.entry(e.track as u64).or_default();
                    match e.phase {
                        TracePhase::Begin => {
                            stack.push(e.name.clone());
                            row.phase = e.name;
                        }
                        TracePhase::End => {
                            stack.pop();
                            row.phase = stack.last().cloned().unwrap_or_default();
                        }
                        TracePhase::Instant => {}
                    }
                    self.dirty = true;
                } else if e.phase == TracePhase::Instant
                    && (e.name.starts_with("lazy-") || e.name.starts_with("filter-"))
                {
                    // The fused search and the pre-filter ladder narrate
                    // themselves through kernel instants; surface the latest
                    // one beside the phase.
                    row.note = e.name;
                    self.dirty = true;
                }
                None
            }
            "done" => {
                let job = u64_field(&value, "job")?;
                let code = u64_field(&value, "code").unwrap_or(0);
                self.jobs.entry(job).or_default().done = Some(code);
                self.dirty = true;
                Some(format!("job {job}: done code {code}"))
            }
            "dropped" => {
                if let Some(n) = u64_field(&value, "count") {
                    self.dropped += n;
                    self.dirty = true;
                    return Some(format!("({n} event(s) dropped to backpressure)"));
                }
                None
            }
            _ => None, // unknown future kinds: skip, like `rlcheck report`
        }
    }

    /// The full-screen table (TTY mode).
    fn render(&self, socket: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rlcheck top — {socket} — {} job(s), {} event(s) dropped",
            self.jobs.len(),
            self.dropped
        );
        let _ = writeln!(
            out,
            "{:>5}  {:<9} {:>9} {:>12} {:>10} {:>9} {:>7} {:>7}  PHASE",
            "JOB", "STATUS", "ELAPSED", "STATES", "RATE/S", "FRONTIER", "BUDGET%", "CACHE%"
        );
        for (id, row) in &self.jobs {
            let hb = row.last.as_ref();
            let _ = writeln!(
                out,
                "{:>5}  {:<9} {:>8.1}s {:>12} {:>10} {:>9} {:>7} {:>7}  {}",
                id,
                row.status(),
                hb.map_or(0.0, |h| h.elapsed_us as f64 / 1e6),
                hb.map_or(0, |h| h.states),
                hb.map_or(0, Heartbeat::states_per_sec),
                hb.map_or(0, |h| h.frontier),
                row.budget_pct()
                    .map_or_else(|| "-".to_owned(), |p| p.to_string()),
                row.cache_pct()
                    .map_or_else(|| "-".to_owned(), |p| p.to_string()),
                if row.note.is_empty() {
                    row.phase.clone()
                } else {
                    format!("{} [{}]", row.phase, row.note)
                }
            );
        }
        out
    }
}

fn u64_field(v: &Json, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Connects to a serve socket, subscribes (`job` restricts to one id), and
/// renders the live stream until the daemon drains (EOF) or `cancel` fires
/// (SIGINT). Returns the process exit code: 0 on a clean stream end.
///
/// # Errors
///
/// [`CheckError::Parse`] when the socket cannot be reached or the daemon
/// refuses the subscription.
pub fn run_top(socket: &str, job: Option<u64>, cancel: &CancelToken) -> Result<u8, CheckError> {
    let mut stream = UnixStream::connect(socket)
        .map_err(|e| CheckError::Parse(format!("top: {socket}: {e}")))?;
    let request = match job {
        Some(id) => format!("{{\"cmd\":\"subscribe\",\"id\":{id}}}\n"),
        None => "{\"cmd\":\"subscribe\",\"id\":\"*\"}\n".to_owned(),
    };
    stream
        .write_all(request.as_bytes())
        .map_err(|e| CheckError::Parse(format!("top: {socket}: {e}")))?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));

    let live = std::io::stderr().is_terminal();
    let mut view = TopView::default();
    let mut acked = false;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if cancel.is_cancelled() {
            break;
        }
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !acked {
                // The first line is the subscribe reply.
                acked = true;
                let v = rl_json::parse(line)
                    .map_err(|e| CheckError::Parse(format!("top: bad reply: {e}")))?;
                if v.get("ok") != Some(&Json::Bool(true)) {
                    return Err(CheckError::Parse(format!("top: subscribe refused: {line}")));
                }
                continue;
            }
            let plain = view.take_line(line);
            if !live {
                if let Some(text) = plain {
                    eprintln!("{text}");
                }
            }
        }
        if live && view.dirty {
            view.dirty = false;
            // Clear and redraw: home the cursor, wipe, print the table.
            eprint!("\x1b[H\x1b[2J{}", view.render(socket));
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // daemon drained: clean end of stream
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    if live {
        eprint!("{}", view.render(socket));
    } else {
        let done = view.jobs.values().filter(|r| r.done.is_some()).count();
        eprintln!(
            "rlcheck top: stream closed ({} job(s) observed, {} finished, {} event(s) dropped)",
            view.jobs.len(),
            done,
            view.dropped
        );
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_tracks_phase_budget_and_completion() {
        let mut view = TopView::default();
        assert!(view
            .take_line(
                "{\"event\":\"trace\",\"job\":1,\"ph\":\"B\",\"track\":0,\
                 \"cat\":\"span\",\"name\":\"determinize\",\"ts_us\":5}"
            )
            .is_none());
        let plain = view.take_line(
            "{\"event\":\"heartbeat\",\"job\":1,\"elapsed_us\":2000000,\
             \"states\":81920,\"transitions\":1,\"frontier\":4096,\
             \"states_limit\":200000,\"cache_hits\":97,\"cache_misses\":3}",
        );
        assert!(plain
            .expect("heartbeats emit plain lines")
            .contains("81920 states"));
        let row = view.jobs.get(&1).expect("job row exists");
        assert_eq!(row.phase, "determinize");
        assert_eq!(row.budget_pct(), Some(40));
        assert_eq!(row.cache_pct(), Some(97));
        assert_eq!(row.status(), "running");
        let done = view.take_line("{\"event\":\"done\",\"job\":1,\"code\":0}");
        assert_eq!(done.as_deref(), Some("job 1: done code 0"));
        assert_eq!(view.jobs[&1].status(), "done(0)");
        let table = view.render("/tmp/x.sock");
        assert!(table.contains("done(0)"), "{table}");
        assert!(table.contains("determinize"), "{table}");
    }

    #[test]
    fn view_surfaces_algorithm_instants_beside_the_phase() {
        let mut view = TopView::default();
        view.take_line(
            "{\"event\":\"trace\",\"job\":3,\"ph\":\"B\",\"track\":0,\
             \"cat\":\"span\",\"name\":\"prefilter\",\"ts_us\":1}",
        );
        view.take_line(
            "{\"event\":\"trace\",\"job\":3,\"ph\":\"I\",\"track\":0,\
             \"cat\":\"kernel\",\"name\":\"filter-hit\",\"ts_us\":2,\
             \"arg\":{\"stage\":2}}",
        );
        let table = view.render("/tmp/x.sock");
        assert!(table.contains("prefilter [filter-hit]"), "{table}");
        // Lazy pipeline instants surface the same way.
        view.take_line(
            "{\"event\":\"trace\",\"job\":3,\"ph\":\"I\",\"track\":0,\
             \"cat\":\"kernel\",\"name\":\"lazy-prune\",\"ts_us\":3,\
             \"arg\":{\"count\":7}}",
        );
        assert!(view.render("s").contains("prefilter [lazy-prune]"));
        // Other kernel instants (layer widths of eager constructions) are
        // not phase narration and stay out of the column.
        view.jobs.get_mut(&3).expect("row").note.clear();
        view.take_line(
            "{\"event\":\"trace\",\"job\":3,\"ph\":\"I\",\"track\":0,\
             \"cat\":\"kernel\",\"name\":\"determinize-layer\",\"ts_us\":4}",
        );
        assert!(!view.render("s").contains("[determinize-layer]"));
    }

    #[test]
    fn view_skips_unknown_kinds_and_counts_drops() {
        let mut view = TopView::default();
        assert!(view.take_line("{\"event\":\"frob\",\"x\":1}").is_none());
        assert!(view.take_line("{\"ok\":true}").is_none());
        let note = view.take_line("{\"event\":\"dropped\",\"count\":4,\"total\":4}");
        assert!(note.expect("drop notice").contains("4 event(s) dropped"));
        assert_eq!(view.dropped, 4);
        assert!(view.jobs.is_empty());
    }
}
