//! Text formats for systems, used by the `rlcheck` CLI.
//!
//! Two self-describing line-based formats are supported; the first
//! non-comment line selects the kind.
//!
//! # Transition systems (`system`)
//!
//! ```text
//! system
//! alphabet: request result reject lock free
//! initial: idle
//! idle  request -> busy
//! busy  result  -> idle
//! # comments and blank lines are ignored
//! ```
//!
//! States are named and interned on first use.
//!
//! # Petri nets (`petri`)
//!
//! ```text
//! petri
//! place idle 1
//! place busy 0
//! trans request: idle -> busy
//! trans grab:    busy 2*idle -> busy
//! ```
//!
//! `place <name> <initial-tokens>` declares places; `trans <name>: <pre> ->
//! <post>` declares transitions where each side lists places, optionally
//! weighted as `k*<place>`. The net's behavior is its bounded reachability
//! graph.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rl_automata::{Alphabet, TransitionSystem};
use rl_petri::{reachability_graph, PetriNet, DEFAULT_MARKING_LIMIT};

/// Errors from parsing system descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line number (0 when the error is global).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for FormatError {}

fn err(line: usize, message: impl Into<String>) -> FormatError {
    FormatError {
        line,
        message: message.into(),
    }
}

/// Parses either format, dispatching on the header line.
///
/// # Errors
///
/// Returns a [`FormatError`] with a line number on malformed input, or when
/// a Petri net's reachability graph exceeds the default marking limit.
pub fn parse_system(text: &str) -> Result<TransitionSystem, FormatError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());
    match lines.next() {
        Some((_, "system")) => parse_transition_system(lines),
        Some((_, "petri")) => parse_petri(lines),
        Some((n, other)) => Err(err(
            n,
            format!("expected header 'system' or 'petri', found {other:?}"),
        )),
        None => Err(err(0, "empty input")),
    }
}

fn parse_transition_system<'a>(
    lines: impl Iterator<Item = (usize, &'a str)>,
) -> Result<TransitionSystem, FormatError> {
    let mut alphabet: Option<Alphabet> = None;
    let mut initial_name: Option<String> = None;
    let mut states: BTreeMap<String, usize> = BTreeMap::new();
    let mut transitions: Vec<(usize, String, String, String)> = Vec::new();

    for (n, line) in lines {
        if let Some(rest) = line.strip_prefix("alphabet:") {
            let names: Vec<&str> = rest.split_whitespace().collect();
            alphabet = Some(
                Alphabet::new(names.iter().map(|s| s.to_string()))
                    .map_err(|e| err(n, e.to_string()))?,
            );
        } else if let Some(rest) = line.strip_prefix("initial:") {
            initial_name = Some(rest.trim().to_owned());
        } else {
            // "<src> <action> -> <dst>"
            let Some((lhs, dst)) = line.split_once("->") else {
                return Err(err(n, format!("expected a transition, found {line:?}")));
            };
            let parts: Vec<&str> = lhs.split_whitespace().collect();
            let [src, action] = parts.as_slice() else {
                return Err(err(n, "transition must be '<src> <action> -> <dst>'"));
            };
            transitions.push((
                n,
                src.to_string(),
                action.to_string(),
                dst.trim().to_owned(),
            ));
        }
    }
    let alphabet = alphabet.ok_or_else(|| err(0, "missing 'alphabet:' line"))?;
    let initial_name = initial_name.ok_or_else(|| err(0, "missing 'initial:' line"))?;

    let mut ts = TransitionSystem::new(alphabet.clone());
    let mut intern = |name: &str, ts: &mut TransitionSystem| -> usize {
        *states
            .entry(name.to_owned())
            .or_insert_with(|| ts.add_labeled_state(name))
    };
    let init = intern(&initial_name, &mut ts);
    ts.set_initial(init);
    for (n, src, action, dst) in transitions {
        let sym = alphabet
            .symbol(&action)
            .ok_or_else(|| err(n, format!("unknown action {action:?}")))?;
        let s = intern(&src, &mut ts);
        let d = intern(&dst, &mut ts);
        ts.add_transition(s, sym, d);
    }
    Ok(ts)
}

fn parse_weighted(
    n: usize,
    text: &str,
    places: &BTreeMap<String, usize>,
) -> Result<Vec<(usize, u32)>, FormatError> {
    let mut out = Vec::new();
    for token in text.split_whitespace() {
        let (weight, name) = match token.split_once('*') {
            Some((w, name)) => (
                w.parse::<u32>()
                    .map_err(|_| err(n, format!("bad weight in {token:?}")))?,
                name,
            ),
            None => (1, token),
        };
        let &place = places
            .get(name)
            .ok_or_else(|| err(n, format!("unknown place {name:?}")))?;
        out.push((place, weight));
    }
    Ok(out)
}

fn parse_petri<'a>(
    lines: impl Iterator<Item = (usize, &'a str)>,
) -> Result<TransitionSystem, FormatError> {
    let mut net = PetriNet::new();
    let mut places: BTreeMap<String, usize> = BTreeMap::new();
    for (n, line) in lines {
        if let Some(rest) = line.strip_prefix("place ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let [name, tokens] = parts.as_slice() else {
                return Err(err(n, "place line must be 'place <name> <tokens>'"));
            };
            let tokens: u32 = tokens
                .parse()
                .map_err(|_| err(n, format!("bad token count {tokens:?}")))?;
            let id = net
                .add_place(*name, tokens)
                .map_err(|e| err(n, e.to_string()))?;
            places.insert((*name).to_owned(), id);
        } else if let Some(rest) = line.strip_prefix("trans ") {
            let Some((name, arcs)) = rest.split_once(':') else {
                return Err(err(n, "transition must be 'trans <name>: <pre> -> <post>'"));
            };
            let Some((pre, post)) = arcs.split_once("->") else {
                return Err(err(n, "transition arcs must be '<pre> -> <post>'"));
            };
            let pre = parse_weighted(n, pre, &places)?;
            let post = parse_weighted(n, post, &places)?;
            net.add_transition(name.trim(), pre, post)
                .map_err(|e| err(n, e.to_string()))?;
        } else {
            return Err(err(
                n,
                format!("expected 'place' or 'trans', found {line:?}"),
            ));
        }
    }
    reachability_graph(&net, DEFAULT_MARKING_LIMIT).map_err(|e| err(0, e.to_string()))
}

/// Renders a transition system back into the `system` text format.
pub fn render_system(ts: &TransitionSystem) -> String {
    let mut out = String::from("system\n");
    out.push_str("alphabet:");
    for name in ts.alphabet().names() {
        out.push(' ');
        out.push_str(&name);
    }
    out.push('\n');
    let name_of = |q: usize| -> String { ts.state_label(q).unwrap_or_else(|| format!("s{q}")) };
    out.push_str(&format!("initial: {}\n", name_of(ts.initial())));
    for (p, a, q) in ts.transitions() {
        out.push_str(&format!(
            "{} {} -> {}\n",
            name_of(p),
            ts.alphabet().name(a),
            name_of(q)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLOCK: &str = "\
system
alphabet: tick tock
initial: s0
s0 tick -> s1   # advance
s1 tock -> s0
";

    #[test]
    fn parses_transition_system() {
        let ts = parse_system(CLOCK).unwrap();
        assert_eq!(ts.state_count(), 2);
        assert_eq!(ts.transition_count(), 2);
        let tick = ts.alphabet().symbol("tick").unwrap();
        assert!(ts.admits(&[tick]));
    }

    #[test]
    fn roundtrips_through_render() {
        let ts = parse_system(CLOCK).unwrap();
        let text = render_system(&ts);
        let back = parse_system(&text).unwrap();
        assert_eq!(ts.state_count(), back.state_count());
        assert_eq!(ts.transition_count(), back.transition_count());
    }

    #[test]
    fn parses_petri_net() {
        let src = "\
petri
place idle 1
place busy 0
trans go:   idle -> busy
trans back: busy -> idle
";
        let ts = parse_system(src).unwrap();
        assert_eq!(ts.state_count(), 2);
        let go = ts.alphabet().symbol("go").unwrap();
        let back = ts.alphabet().symbol("back").unwrap();
        assert!(ts.admits(&[go, back, go]));
    }

    #[test]
    fn weighted_arcs_parse() {
        let src = "\
petri
place pool 4
place out 0
trans take2: 2*pool -> out
";
        let ts = parse_system(src).unwrap();
        // 4 → 2 → 0 tokens: three markings.
        assert_eq!(ts.state_count(), 3);
    }

    #[test]
    fn error_messages_carry_lines() {
        let bad = "system\nalphabet: a\ninitial: s0\ns0 zz -> s1\n";
        let e = parse_system(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("zz"));

        let bad2 = "nope\n";
        assert!(parse_system(bad2).unwrap_err().message.contains("header"));

        let bad3 = "system\ninitial: s0\ns0 a -> s1\n";
        assert!(parse_system(bad3).unwrap_err().message.contains("alphabet"));
    }

    #[test]
    fn unbounded_net_reported() {
        let src = "petri\nplace p 0\ntrans spawn: -> p\n";
        let e = parse_system(src).unwrap_err();
        assert!(e.message.contains("exceeded"));
    }
}
