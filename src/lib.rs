//! # relative-liveness
//!
//! A complete, executable reproduction of Ulrich Nitsche and Pierre Wolper,
//! *Relative Liveness and Behavior Abstraction* (PODC 1997): relative
//! liveness/safety checking for ω-regular systems, fair-implementation
//! synthesis, and verification by behavior abstraction under simple
//! homomorphisms — together with every substrate the paper relies on
//! (finite and ω-automata, PLTL, Petri nets, abstraction homomorphisms,
//! fair schedulers), implemented from scratch in Rust.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`automata`] | `rl-automata` | alphabets, NFA/DFA, minimization, equivalence, transition systems |
//! | [`buchi`] | `rl-buchi` | Büchi automata, products, emptiness, complementation, `pre`/`lim` |
//! | [`logic`] | `rl-logic` | PLTL, GPVW translation, the `T`/`R̄` transforms of Definition 7.4 |
//! | [`petri`] | `rl-petri` | Petri nets, reachability graphs, the paper's Figures 1–3 |
//! | [`abstraction`] | `rl-abstraction` | homomorphisms, images, simplicity (Definition 6.3) |
//! | [`core`] | `rl-core` | relative liveness/safety (Theorem 4.5), Theorem 5.1 synthesis, the Corollary 8.4 pipeline |
//! | [`exec`] | `rl-exec` | strongly fair / random / adversarial schedulers and runners |
//!
//! # Quickstart
//!
//! ```
//! use relative_liveness::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's server (Figure 1 → Figure 2).
//! let system = server_behaviors();
//! let eta = parse("[]<>result")?;
//!
//! // Classically false (unfair schedules starve the client) …
//! let behaviors = behaviors_of_ts(&system);
//! assert!(!satisfies(&behaviors, &Property::formula(eta.clone()))?.holds);
//! // … but relatively live: some fairness makes it true.
//! assert!(is_relative_liveness(&behaviors, &Property::formula(eta.clone()))?.holds);
//!
//! // And the whole Section 8 pipeline: abstract to {request, result,
//! // reject}, check simplicity, verify on the 2-state abstraction, and
//! // transfer the verdict to the concrete 8-state system.
//! let h = Homomorphism::hiding(system.alphabet(), ["request", "result", "reject"])?;
//! let analysis = verify_via_abstraction(&system, &h, &eta)?;
//! assert_eq!(analysis.conclusion, TransferConclusion::ConcreteHolds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod format;
#[cfg(unix)]
pub mod serve;
#[cfg(unix)]
pub mod top;

pub use rl_abstraction as abstraction;
pub use rl_automata as automata;
pub use rl_buchi as buchi;
pub use rl_core as core;
pub use rl_exec as exec;
pub use rl_json as json;
pub use rl_logic as logic;
pub use rl_petri as petri;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use rl_abstraction::{
        abstract_behavior, abstract_behavior_with, check_simplicity, check_simplicity_with,
        compositional_abstract_behavior, extend_with_hash, has_maximal_words,
        has_maximal_words_with, image_nfa, inverse_image_buchi, inverse_image_nfa, Homomorphism,
    };
    pub use rl_automata::{
        dfa_equivalent, dfa_included, dfa_included_with, format_word, largest_simulation,
        parse_word, resolve_jobs, simulates, Alphabet, Dfa, GuardProbe, Nfa, OpCache, Pool, Regex,
        RegistrySnapshot, Symbol, TransitionSystem, Word,
    };
    pub use rl_buchi::{
        behaviors_of_ts, behaviors_of_ts_with, complement, complement_with, limit_of_dfa,
        limit_of_regular, limit_of_regular_with, omega_equivalent, omega_included,
        omega_included_with, Buchi, OmegaRegex, UpWord,
    };
    pub use rl_core::{
        cantor_distance, certify_density, check_transported_concrete, chrome_trace_json,
        dense_witness, extension_witness, folded_stacks, forall_always_exists_eventually,
        forall_always_recurrently, is_liveness_property, is_machine_closed, is_relative_liveness,
        is_relative_liveness_of_ts, is_relative_liveness_of_ts_with, is_relative_liveness_with,
        is_relative_safety, is_relative_safety_with, is_safety_property, labeling_for_homomorphism,
        render_jsonl, satisfies, satisfies_with, synthesize_fair_implementation,
        verify_via_abstraction, verify_via_abstraction_with, AbstractionAnalysis, Budget,
        CancelToken, CheckError, CoreError, Counter, FairImplementation, Guard, Metric,
        MetricsRegistry, ObsReport, PoolCounters, Progress, Property, Resource, Span, SpanRecord,
        TraceEvent, TracePhase, Tracer, TransferConclusion,
    };
    pub use rl_exec::{
        almost_surely_recurrent, estimate_satisfaction, min_fairness_ratio,
        probability_of_recurrence, run, sample_lasso, AgingScheduler, FixedPriorityScheduler,
        MonteCarloEstimate, PriorityScheduler, RandomScheduler, Scheduler,
    };
    pub use rl_logic::{
        evaluate, formula_to_buchi, parse, r_bar, r_bar_strict, simplify, to_sigma_normal_form,
        transform_t, Formula, Labeling, EPSILON_PROP,
    };
    pub use rl_petri::examples::{
        server_behaviors, server_err_behaviors, server_net, server_net_err,
    };
    pub use rl_petri::{
        deadlock_markings, live_transitions, place_bounds, reachability_graph, PetriNet,
    };
}
