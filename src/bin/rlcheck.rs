//! `rlcheck` — command-line relative-liveness checker.
//!
//! ```text
//! rlcheck check <system-file> <formula>
//!     classical satisfaction, relative liveness and relative safety,
//!     with counterexamples.
//!
//! rlcheck abstract <system-file> <formula> --keep a,b,c
//!     the Section 8 pipeline: abstract by hiding everything but the kept
//!     actions, check simplicity, decide on the abstraction, transfer.
//!
//! rlcheck simplicity <system-file> --keep a,b,c
//!     just the Definition 6.3 simplicity check.
//!
//! rlcheck fair <system-file> <formula> [--steps N]
//!     Theorem 5.1: synthesize the fair implementation and execute it with
//!     the strongly fair aging scheduler.
//!
//! rlcheck dot <system-file>
//!     Graphviz DOT output of the system.
//! ```
//!
//! System files use the `system`/`petri` formats of
//! [`relative_liveness::format`].

use std::process::ExitCode;

use relative_liveness::format::parse_system;
use relative_liveness::prelude::*;

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("rlcheck: {msg}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<TransitionSystem, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_system(&text).map_err(|e| format!("{path}: {e}"))
}

fn keep_list(args: &[String]) -> Option<Vec<String>> {
    let idx = args.iter().position(|a| a == "--keep")?;
    let raw = args.get(idx + 1)?;
    Some(raw.split(',').map(|s| s.trim().to_owned()).collect())
}

fn cmd_check(path: &str, formula: &str) -> Result<ExitCode, String> {
    let ts = load(path)?;
    let eta = parse(formula).map_err(|e| e.to_string())?;
    let behaviors = behaviors_of_ts(&ts);
    let prop = Property::formula(eta.clone());

    let sat = satisfies(&behaviors, &prop).map_err(|e| e.to_string())?;
    println!("classical  {eta}: {}", verdict(sat.holds));
    if let Some(x) = sat.counterexample {
        println!("           counterexample: {}", x.display(ts.alphabet()));
    }
    let rl = is_relative_liveness(&behaviors, &prop).map_err(|e| e.to_string())?;
    println!("rel-live   {eta}: {}", verdict(rl.holds));
    if let Some(w) = &rl.doomed_prefix {
        println!(
            "           doomed prefix: {}",
            format_word(ts.alphabet(), w)
        );
    }
    let rs = is_relative_safety(&behaviors, &prop).map_err(|e| e.to_string())?;
    println!("rel-safe   {eta}: {}", verdict(rs.holds));
    if let Some(x) = rs.escaping_behavior {
        println!("           escaping behavior: {}", x.display(ts.alphabet()));
    }
    Ok(if rl.holds {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_abstract(path: &str, formula: &str, keep: Vec<String>) -> Result<ExitCode, String> {
    let ts = load(path)?;
    let eta = parse(formula).map_err(|e| e.to_string())?;
    let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
    let h = Homomorphism::hiding(ts.alphabet(), keep_refs.iter().copied())
        .map_err(|e| e.to_string())?;
    let analysis = verify_via_abstraction(&ts, &h, &eta).map_err(|e| e.to_string())?;
    println!(
        "abstraction: {} states (concrete {})",
        analysis.abstract_system.state_count(),
        ts.state_count()
    );
    println!(
        "abstract rel-live {eta}: {}",
        verdict(analysis.abstract_verdict.holds)
    );
    println!("h simple: {}", verdict(analysis.simplicity.simple));
    if let Some(w) = &analysis.simplicity.violation {
        println!("  violation: {}", format_word(ts.alphabet(), w));
    }
    println!("maximal words in h(L): {}", analysis.maximal_words);
    println!("transported property: {}", analysis.transported_formula);
    let (text, code) = match &analysis.conclusion {
        TransferConclusion::ConcreteHolds => (
            "concrete system relatively satisfies the property (Thm 8.2)",
            ExitCode::SUCCESS,
        ),
        TransferConclusion::ConcreteFails { .. } => (
            "concrete system does NOT relatively satisfy it (Thm 8.3)",
            ExitCode::FAILURE,
        ),
        TransferConclusion::InconclusiveNotSimple { .. } => (
            "INCONCLUSIVE: homomorphism not simple — verify concretely",
            ExitCode::from(3),
        ),
        TransferConclusion::InconclusiveMaximalWords => (
            "INCONCLUSIVE: h(L) has maximal words — apply the #-extension",
            ExitCode::from(3),
        ),
    };
    println!("conclusion: {text}");
    Ok(code)
}

fn cmd_simplicity(path: &str, keep: Vec<String>) -> Result<ExitCode, String> {
    let ts = load(path)?;
    let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
    let h = Homomorphism::hiding(ts.alphabet(), keep_refs.iter().copied())
        .map_err(|e| e.to_string())?;
    let report = check_simplicity(&h, &ts.to_nfa()).map_err(|e| e.to_string())?;
    println!("homomorphism: {h}");
    println!(
        "simple: {} ({} continuation pairs checked)",
        verdict(report.simple),
        report.pairs_checked
    );
    if let Some(w) = &report.violation {
        println!("violation word: {}", format_word(ts.alphabet(), w));
    }
    Ok(if report.simple {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_fair(path: &str, formula: &str, steps: usize) -> Result<ExitCode, String> {
    let ts = load(path)?;
    let eta = parse(formula).map_err(|e| e.to_string())?;
    let imp = synthesize_fair_implementation(&ts, &Property::formula(eta.clone()))
        .map_err(|e| e.to_string())?;
    println!(
        "synthesized implementation: {} states (original {})",
        imp.system.state_count(),
        ts.state_count()
    );
    let r = run(&imp.system, &mut AgingScheduler::new(), steps);
    println!(
        "strongly fair run: {} steps{}",
        r.len(),
        if r.deadlocked { " (deadlocked)" } else { "" }
    );
    let mut counts: Vec<(String, usize)> = r
        .action_counts()
        .into_iter()
        .map(|(a, n)| (imp.system.alphabet().name(a).to_owned(), n))
        .collect();
    counts.sort();
    for (name, n) in counts {
        println!("  {name:<16} ×{n}");
    }
    if let Some(gap) = r.max_gap_between_visits(&imp.recurrent) {
        println!("max gap between recurrent visits: {gap}");
    }
    Ok(ExitCode::SUCCESS)
}

fn verdict(b: bool) -> &'static str {
    if b {
        "HOLDS"
    } else {
        "fails"
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: rlcheck <check|abstract|simplicity|fair|dot> <system-file> \
                 [<formula>] [--keep a,b,c] [--steps N]";
    let Some(cmd) = args.first() else {
        return fail(usage);
    };
    let result = match cmd.as_str() {
        "check" => match (args.get(1), args.get(2)) {
            (Some(path), Some(f)) => cmd_check(path, f),
            _ => return fail(usage),
        },
        "abstract" => match (args.get(1), args.get(2), keep_list(&args)) {
            (Some(path), Some(f), Some(keep)) => cmd_abstract(path, f, keep),
            _ => return fail("abstract needs <system-file> <formula> --keep a,b,c"),
        },
        "simplicity" => match (args.get(1), keep_list(&args)) {
            (Some(path), Some(keep)) => cmd_simplicity(path, keep),
            _ => return fail("simplicity needs <system-file> --keep a,b,c"),
        },
        "fair" => match (args.get(1), args.get(2)) {
            (Some(path), Some(f)) => {
                let steps = args
                    .iter()
                    .position(|a| a == "--steps")
                    .and_then(|i| args.get(i + 1))
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1_000);
                cmd_fair(path, f, steps)
            }
            _ => return fail(usage),
        },
        "dot" => match args.get(1) {
            Some(path) => match load(path) {
                Ok(ts) => {
                    println!("{}", ts.to_dot("system"));
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => Err(e),
            },
            None => return fail(usage),
        },
        other => return fail(format!("unknown command {other:?}\n{usage}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => fail(e),
    }
}
