//! `rlcheck` — command-line relative-liveness checker.
//!
//! ```text
//! rlcheck check <system-file> <formula>
//!     classical satisfaction, relative liveness and relative safety,
//!     with counterexamples.
//!
//! rlcheck abstract <system-file> <formula> --keep a,b,c
//!     the Section 8 pipeline: abstract by hiding everything but the kept
//!     actions, check simplicity, decide on the abstraction, transfer.
//!
//! rlcheck simplicity <system-file> --keep a,b,c
//!     just the Definition 6.3 simplicity check.
//!
//! rlcheck fair <system-file> <formula> [--steps N]
//!     Theorem 5.1: synthesize the fair implementation and execute it with
//!     the strongly fair aging scheduler.
//!
//! rlcheck dot <system-file>
//!     Graphviz DOT output of the system.
//!
//! rlcheck batch [--manifest <file>] [<system-file>... --formula <f>]
//!     run many checks as one batch: manifest lines are
//!     `<system-file> <formula>` (# comments allowed), positional files
//!     all use --formula. Checks fan out across --jobs workers with
//!     per-check isolation; outputs print in submission order and the
//!     worst per-check exit code wins.
//!
//! rlcheck report <metrics.jsonl> | --dir <journal-dir>
//!     render a committed --metrics file (rl-obs/v1, /v2, or /v3 with
//!     percentile tables) offline: the phase table on stdout —
//!     byte-for-byte the --stats output of the run that wrote it — and a
//!     per-track event digest on stderr. Also accepts a captured
//!     `subscribe` stream (rlcheck top 2> file) and renders its per-job
//!     heartbeat/completion digest. With --dir, renders the persistent
//!     metrics journal a `serve --metrics-dir` daemon wrote: runs are
//!     stitched across restarts and rotated segments, with percentile
//!     columns per histogram family.
//!
//! rlcheck slo <baseline.json> --dir <journal-dir>
//!     regression gate: compare the journal's merged percentiles against a
//!     committed rl-slo/v1 baseline (per-family p50/p90/p99/max ceilings
//!     plus a tolerance). Exit 0 within tolerance, exit 1 with one stderr
//!     line per violation — CI gates on the exit code.
//!
//! rlcheck serve --socket <path> [--max-inflight-states <n>] [--queue-cap <n>]
//!               [--metrics-dir <dir>]
//!     long-running checking service on a Unix domain socket with a
//!     line-delimited JSON protocol (submit/status/wait/cancel/stats/
//!     subscribe/unsubscribe/shutdown), per-job panic isolation, admission
//!     control, live telemetry streaming, and graceful drain on
//!     SIGINT/SIGTERM. --timeout/--max-states set the default per-job
//!     budget; see DESIGN.md §12 and the README for the protocol.
//!
//! rlcheck top <socket> [--job <id>]
//!     live per-job view of a running serve daemon: subscribes to the
//!     telemetry stream and renders states/sec, phase, budget and cache
//!     hit rate per job — a refreshing table when stderr is a TTY, plain
//!     lines otherwise (so `2> capture.log` records a replayable stream).
//! ```
//!
//! Every subcommand additionally accepts resource limits and observability
//! flags:
//!
//! ```text
//! --timeout <secs>     wall-clock deadline for the decision procedures
//!                      (in batch mode: one deadline for the whole batch)
//! --max-states <n>     cap on states materialized by any construction
//! --jobs <n>           worker threads: parallel frontier expansion inside
//!                      one check, whole checks in batch mode. 0 = all
//!                      cores; overrides the RL_THREADS env var; results
//!                      are bit-for-bit identical for every value
//! --stats              per-phase profile (states, transitions, elapsed)
//!                      printed to stderr after the verdict
//! --metrics <file>     machine-readable JSONL trace written to <file>
//!                      (schema rl-obs/v1; /v2 with --trace-out; /v3 when
//!                      percentile histograms recorded samples)
//! --trace-out <file>   event-level timeline: Chrome trace-event JSON
//!                      (chrome://tracing, Perfetto), one track per worker,
//!                      with pool/op-cache telemetry instants
//! --flame-out <file>   folded stacks (phase;subphase self_us) for
//!                      flamegraph tooling
//! --progress           live heartbeats on stderr (elapsed, states/sec,
//!                      frontier, budget fraction) while a check runs
//! --no-op-cache        disable the automaton-operation memo cache that the
//!                      deciders (and the jobs of a batch) share by default
//! --no-lazy            opt out of the lazy fused pipeline: materialize the
//!                      subset constructions and differences eagerly instead
//!                      of exploring the on-the-fly product with antichain
//!                      subsumption (verdicts are identical either way)
//! --no-filters         opt out of the semidecision pre-filter ladder
//!                      (Parikh letter counts, counts mod k, simulation
//!                      fast-accept) that short-circuits the exact inclusion
//!                      decider when an abstraction already settles the
//!                      verdict (verdicts are identical either way)
//! --cache-bytes <n>    byte budget for that cache: resident entries are
//!                      size-accounted and evicted cost-aware-LRU so the
//!                      cache never holds more than <n> bytes (verdicts and
//!                      deterministic counters are unchanged by eviction)
//! ```
//!
//! SIGINT/SIGTERM cancel the run through the guard's cancel token: the
//! process exits 3 with partial diagnostics and every sink flushed instead
//! of dying mid-write (in serve mode, the signals trigger a graceful
//! drain).
//!
//! All sinks are also flushed when a budget trips (exit 3) *and* on the
//! internal-panic path (exit 101), so the profile shows where the budget —
//! or the bug — lives. Tracing never perturbs the deterministic counters:
//! states/transitions/cache-hits/guard-charges are bit-for-bit identical
//! with and without `--trace-out` at every `--jobs` value.
//!
//! Exit codes: `0` property holds, `1` it fails, `2` usage or input error,
//! `3` resource budget exhausted (or an inconclusive abstraction verdict),
//! `101` internal panic.
//!
//! System files use the `system`/`petri` formats of
//! [`relative_liveness::format`].

use std::panic::{self, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use relative_liveness::check::{
    batch_job_deadline, parse_formula, report_check, run_check, verdict, worst_exit, CheckSpec,
    SystemSource,
};
use relative_liveness::prelude::*;
use rl_obs::{
    evaluate_slo, knobs, parse_slo_baseline, read_journal, render_journal, render_jsonl_with_hists,
    HistogramRegistry, HistogramSnapshot,
};

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("rlcheck: {msg}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<TransitionSystem, CheckError> {
    SystemSource::Path(path.to_owned()).load()
}

fn keep_list(args: &[String]) -> Option<Vec<String>> {
    let idx = args.iter().position(|a| a == "--keep")?;
    let raw = args.get(idx + 1)?;
    Some(raw.split(',').map(|s| s.trim().to_owned()).collect())
}

/// Extracts `--timeout <secs>` and `--max-states <n>` from the argument list
/// (removing them so positional parsing stays untouched) and builds the
/// resulting [`Budget`].
fn extract_budget(args: &mut Vec<String>) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    for (flag, what) in [("--timeout", "seconds"), ("--max-states", "count")] {
        // Consume every occurrence; the last value wins.
        while let Some(idx) = args.iter().position(|a| a == flag) {
            let Some(raw) = args.get(idx + 1).cloned() else {
                return Err(format!("{flag} needs a value ({what})"));
            };
            let value: u64 = raw
                .parse()
                .map_err(|_| format!("{flag}: {raw:?} is not a valid {what}"))?;
            args.drain(idx..idx + 2);
            match flag {
                "--timeout" => budget.deadline = Some(Duration::from_secs(value)),
                _ => budget.max_states = Some(value as usize),
            }
        }
    }
    Ok(budget)
}

/// The observability sinks requested on the command line.
#[derive(Default)]
struct ObsFlags {
    /// `--stats`: phase table on stderr.
    stats: bool,
    /// `--metrics <file>`: JSONL (rl-obs/v1, or /v2 when tracing).
    metrics: Option<String>,
    /// `--trace-out <file>`: Chrome trace-event JSON.
    trace: Option<String>,
    /// `--flame-out <file>`: folded stacks.
    flame: Option<String>,
    /// `--progress`: live heartbeats on stderr.
    progress: bool,
}

impl ObsFlags {
    /// Whether any sink needs a metrics registry attached to the guard.
    fn wants_registry(&self) -> bool {
        self.stats || self.metrics.is_some() || self.trace.is_some() || self.flame.is_some()
    }
}

/// Extracts the observability flags from the argument list (removing them so
/// positional parsing stays untouched).
fn extract_obs(args: &mut Vec<String>) -> Result<ObsFlags, String> {
    let mut obs = ObsFlags::default();
    for (flag, target) in [
        ("--stats", &mut obs.stats),
        ("--progress", &mut obs.progress),
    ] {
        while let Some(idx) = args.iter().position(|a| a == flag) {
            args.remove(idx);
            *target = true;
        }
    }
    for (flag, target) in [
        ("--metrics", &mut obs.metrics),
        ("--trace-out", &mut obs.trace),
        ("--flame-out", &mut obs.flame),
    ] {
        while let Some(idx) = args.iter().position(|a| a == flag) {
            let Some(raw) = args.get(idx + 1).cloned() else {
                return Err(format!("{flag} needs a value (output file)"));
            };
            args.drain(idx..idx + 2);
            *target = Some(raw);
        }
    }
    Ok(obs)
}

/// Extracts `--no-op-cache` from the argument list. The automaton-operation
/// memo cache is on by default; this flag disables it (for debugging or
/// apples-to-apples timing of the raw constructions).
fn extract_no_op_cache(args: &mut Vec<String>) -> bool {
    let mut disabled = false;
    while let Some(idx) = args.iter().position(|a| a == "--no-op-cache") {
        args.remove(idx);
        disabled = true;
    }
    disabled
}

/// Extracts `--no-lazy` from the argument list. The lazy fused pipeline
/// (on-the-fly inclusion search with antichain subsumption) is on by
/// default; this flag opts back into the eager materializing constructions
/// (for debugging, differential testing, and apples-to-apples benchmarks).
fn extract_no_lazy(args: &mut Vec<String>) -> bool {
    let mut disabled = false;
    while let Some(idx) = args.iter().position(|a| a == "--no-lazy") {
        args.remove(idx);
        disabled = true;
    }
    disabled
}

/// Extracts `--no-filters` from the argument list. The semidecision
/// pre-filter ladder (Parikh, counts-mod-k, simulation fast-accept) runs in
/// front of the exact inclusion decider by default; this flag disables it so
/// every check exercises the exact (lazy or eager) core — for debugging,
/// differential testing, and apples-to-apples benchmarks.
fn extract_no_filters(args: &mut Vec<String>) -> bool {
    let mut disabled = false;
    while let Some(idx) = args.iter().position(|a| a == "--no-filters") {
        args.remove(idx);
        disabled = true;
    }
    disabled
}

/// Extracts a `<flag> <value>` pair from the argument list (every
/// occurrence; the last value wins).
fn extract_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let mut value = None;
    while let Some(idx) = args.iter().position(|a| a == flag) {
        let Some(raw) = args.get(idx + 1).cloned() else {
            return Err(format!("{flag} needs a value"));
        };
        args.drain(idx..idx + 2);
        value = Some(raw);
    }
    Ok(value)
}

/// Extracts `--jobs <n>` and resolves the effective worker count:
/// the flag wins over the `RL_THREADS` env var, `0` (in either) auto-detects
/// the machine's cores, and with neither set the run is sequential.
fn extract_jobs(args: &mut Vec<String>) -> Result<usize, String> {
    let flag = match extract_value_flag(args, "--jobs")? {
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|_| format!("--jobs: {raw:?} is not a valid worker count"))?,
        ),
        None => None,
    };
    Ok(resolve_jobs(flag))
}

/// Parses a batch manifest: one `<system-file> <formula>` per line, where
/// the formula is the rest of the line; blank lines and `#` comments are
/// skipped.
fn parse_manifest(text: &str) -> Result<Vec<CheckSpec>, String> {
    let mut checks = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((path, formula)) = line.split_once(char::is_whitespace) else {
            return Err(format!(
                "manifest line {}: expected `<system-file> <formula>`",
                ln + 1
            ));
        };
        checks.push(CheckSpec::from_path(path, formula.trim()));
    }
    Ok(checks)
}

/// What one batch job reports back across the pool: buffered stdout/stderr,
/// an exit code, and (when observability is on) its metrics shard.
type JobOutcome = (String, String, u8, Option<RegistrySnapshot>);

/// The guard-shaping state every batch job starts from: the shared budget,
/// the one cancel token, and the pipeline selection (`--no-lazy`).
struct GuardSeed {
    budget: Budget,
    cancel: CancelToken,
    lazy: bool,
    filters: bool,
    /// Shared percentile registry. Unlike the counter registry (sharded
    /// per job and absorbed in submission order for determinism), the
    /// histogram registry is attached directly: records are lock-free
    /// atomic increments and quantiles are order-independent, so jobs can
    /// share one set of bucket arrays.
    hists: Option<HistogramRegistry>,
}

/// Runs a batch of checks across a worker pool with per-check isolation:
/// each check gets its own guard (sharing the batch deadline's *remaining*
/// time, one cancel token, and one op cache), its output is buffered and
/// printed in submission order, a panicking check maps to exit 101 without
/// taking down its siblings, and the worst per-check exit code wins.
fn cmd_batch(
    checks: Vec<CheckSpec>,
    threads: usize,
    seed: GuardSeed,
    registry: Option<&MetricsRegistry>,
    shared_cache: Option<OpCache>,
    tracer: Option<&Arc<Tracer>>,
) -> ExitCode {
    let pool = Pool::with_tracer(threads, tracer.cloned());
    if let Some(h) = &seed.hists {
        pool.set_histograms(h.clone());
    }
    let batch_start = std::time::Instant::now();
    let want_snapshots = registry.is_some();

    let total = checks.len();
    // Completed-job count, for the fair deadline split below.
    let finished = Arc::new(AtomicUsize::new(0));
    let jobs: Vec<Box<dyn FnOnce() -> JobOutcome + Send>> = checks
        .into_iter()
        .map(|check| {
            let budget = seed.budget.clone();
            let cancel = seed.cancel.clone();
            let lazy = seed.lazy;
            let filters = seed.filters;
            let hists = seed.hists.clone();
            let cache = shared_cache.clone();
            let tracer = tracer.cloned();
            let finished = Arc::clone(&finished);
            let job = move || -> JobOutcome {
                // Budget splitting: the whole batch shares one wall clock.
                // At each job start, the *live* remaining time is divided by
                // the scheduling waves the still-unfinished jobs need, so a
                // job that finishes early donates its unused slice to jobs
                // that start later instead of stranding it.
                let mut budget = budget;
                if let Some(deadline) = budget.deadline {
                    let remaining = deadline.saturating_sub(batch_start.elapsed());
                    let unfinished = total - finished.load(Ordering::Relaxed).min(total);
                    budget.deadline = Some(batch_job_deadline(remaining, unfinished, threads));
                }
                // The guard is assembled *inside* the job: its metrics
                // registry is thread-local, so results cross back to the
                // parent as a Send snapshot. The tracer is the shared
                // sharded collector, so the job's span events land on the
                // worker's own timeline track.
                let reg = want_snapshots.then(MetricsRegistry::new);
                let mut guard = Guard::with_cancel(budget, cancel)
                    .with_lazy(lazy)
                    .with_filters(filters);
                if let Some(r) = &reg {
                    if let Some(t) = tracer {
                        r.set_tracer(t);
                    }
                    guard = guard.with_metrics(r.clone());
                }
                if let Some(h) = hists {
                    guard = guard.with_histograms(h);
                }
                if let Some(cache) = cache {
                    guard = guard.with_op_cache(cache);
                }
                let mut out = String::new();
                let mut err = String::new();
                let code = report_check(&check, &guard, &mut out, &mut err);
                finished.fetch_add(1, Ordering::Relaxed);
                (out, err, code, reg.as_ref().map(MetricsRegistry::snapshot))
            };
            Box::new(job) as Box<dyn FnOnce() -> JobOutcome + Send>
        })
        .collect();

    let results = pool.run_jobs(jobs);

    let mut worst = 0u8;
    let mut held = 0usize;
    for (i, result) in results.into_iter().enumerate() {
        let (out, err, code, snapshot) = match result {
            Ok(outcome) => outcome,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_owned());
                (
                    String::new(),
                    format!("rlcheck: internal panic: {msg}\n"),
                    101,
                    None,
                )
            }
        };
        print!("{out}");
        eprint!("{err}");
        if code == 0 {
            held += 1;
        }
        worst = worst_exit(worst, code);
        // Merge the job's metrics shard into the parent registry, in
        // submission order, so --stats/--metrics output is deterministic.
        if let (Some(parent), Some(shard)) = (registry, &snapshot) {
            parent.absorb(&format!("job{i}"), shard);
        }
    }
    note_runtime_counters(registry, Some(&pool), shared_cache.as_ref());
    println!("batch: {held}/{total} checks relatively live (exit {worst})");
    ExitCode::from(worst)
}

/// Folds the pool's scheduler telemetry and the op cache's shard statistics
/// into the registry as named counters, so they ride the `--stats` footer
/// and the JSONL `totals` line. These are schedule-dependent (steal/park
/// counts vary run to run), which is exactly why they are *counters* and
/// never deterministic metrics. Pool counters only appear for real parallel
/// runs (`--jobs > 1`).
fn note_runtime_counters(
    registry: Option<&MetricsRegistry>,
    pool: Option<&Pool>,
    cache: Option<&OpCache>,
) {
    let Some(reg) = registry else {
        return;
    };
    if let Some(pool) = pool.filter(|p| p.threads() >= 2) {
        let c = pool.counters();
        reg.counter("pool/spawns").add(c.spawns);
        reg.counter("pool/steals").add(c.steals);
        reg.counter("pool/parks").add(c.parks);
        reg.counter("pool/unparks").add(c.unparks);
    }
    if let Some(cache) = cache {
        reg.counter("opcache/hits").add(cache.hits() as u64);
        reg.counter("opcache/misses").add(cache.misses() as u64);
        reg.counter("opcache/adoptions")
            .add(cache.adoptions() as u64);
        // Memory accounting: what the cache holds now and how much it shed.
        // Deterministic for a fixed input and --cache-bytes (eviction order
        // is a pure function of the access sequence), unlike the pool's
        // schedule-dependent telemetry above.
        reg.counter("opcache/resident_bytes")
            .add(cache.resident_bytes() as u64);
        reg.counter("opcache/evictions")
            .add(cache.evictions() as u64);
    }
}

fn cmd_check(path: &str, formula: &str, guard: &Guard) -> Result<ExitCode, CheckError> {
    let spec = CheckSpec::from_path(path, formula);
    let mut out = String::new();
    let result = run_check(&spec, guard, &mut out);
    print!("{out}");
    Ok(if result? {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_abstract(
    path: &str,
    formula: &str,
    keep: Vec<String>,
    guard: &Guard,
) -> Result<ExitCode, CheckError> {
    let _span = guard.span("abstract");
    let ts = load(path)?;
    let eta = parse_formula(formula)?;
    let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
    let h =
        Homomorphism::hiding(ts.alphabet(), keep_refs.iter().copied()).map_err(CheckError::from)?;
    let analysis = verify_via_abstraction_with(&ts, &h, &eta, guard)?;
    println!(
        "abstraction: {} states (concrete {})",
        analysis.abstract_system.state_count(),
        ts.state_count()
    );
    println!(
        "abstract rel-live {eta}: {}",
        verdict(analysis.abstract_verdict.holds)
    );
    println!("h simple: {}", verdict(analysis.simplicity.simple));
    if let Some(w) = &analysis.simplicity.violation {
        println!("  violation: {}", format_word(ts.alphabet(), w));
    }
    println!("maximal words in h(L): {}", analysis.maximal_words);
    println!("transported property: {}", analysis.transported_formula);
    let (text, code) = match &analysis.conclusion {
        TransferConclusion::ConcreteHolds => (
            "concrete system relatively satisfies the property (Thm 8.2)",
            ExitCode::SUCCESS,
        ),
        TransferConclusion::ConcreteFails { .. } => (
            "concrete system does NOT relatively satisfy it (Thm 8.3)",
            ExitCode::FAILURE,
        ),
        TransferConclusion::InconclusiveNotSimple { .. } => (
            "INCONCLUSIVE: homomorphism not simple — verify concretely",
            ExitCode::from(3),
        ),
        TransferConclusion::InconclusiveMaximalWords => (
            "INCONCLUSIVE: h(L) has maximal words — apply the #-extension",
            ExitCode::from(3),
        ),
    };
    println!("conclusion: {text}");
    Ok(code)
}

fn cmd_simplicity(path: &str, keep: Vec<String>, guard: &Guard) -> Result<ExitCode, CheckError> {
    let ts = load(path)?;
    let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
    let h =
        Homomorphism::hiding(ts.alphabet(), keep_refs.iter().copied()).map_err(CheckError::from)?;
    let report = check_simplicity_with(&h, &ts.to_nfa(), guard)?;
    println!("homomorphism: {h}");
    println!(
        "simple: {} ({} continuation pairs checked)",
        verdict(report.simple),
        report.pairs_checked
    );
    if let Some(w) = &report.violation {
        println!("violation word: {}", format_word(ts.alphabet(), w));
    }
    Ok(if report.simple {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_fair(path: &str, formula: &str, steps: usize) -> Result<ExitCode, CheckError> {
    let ts = load(path)?;
    let eta = parse_formula(formula)?;
    let imp = synthesize_fair_implementation(&ts, &Property::formula(eta.clone()))
        .map_err(CheckError::from)?;
    println!(
        "synthesized implementation: {} states (original {})",
        imp.system.state_count(),
        ts.state_count()
    );
    let r = run(&imp.system, &mut AgingScheduler::new(), steps);
    println!(
        "strongly fair run: {} steps{}",
        r.len(),
        if r.deadlocked { " (deadlocked)" } else { "" }
    );
    let mut counts: Vec<(String, usize)> = r
        .action_counts()
        .into_iter()
        .map(|(a, n)| (imp.system.alphabet().name(a).to_owned(), n))
        .collect();
    counts.sort();
    for (name, n) in counts {
        println!("  {name:<16} ×{n}");
    }
    if let Some(gap) = r.max_gap_between_visits(&imp.recurrent) {
        println!("max gap between recurrent visits: {gap}");
    }
    Ok(ExitCode::SUCCESS)
}

/// The `report` subcommand: renders a committed `--metrics` JSONL file
/// (rl-obs/v1 or /v2) offline. The phase table goes to stdout —
/// byte-for-byte the `--stats` stderr of the run that wrote the file, since
/// both render the same snapshot at the same microsecond precision — and
/// the per-track event digest (v2 only) goes to stderr. A captured
/// `subscribe` stream (no meta header, `"event"` lines only) renders as a
/// per-job heartbeat/completion digest instead. Unknown event kinds are
/// skipped and tallied, never fatal, so newer captures stay readable.
fn cmd_report(path: &str) -> Result<ExitCode, CheckError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CheckError::Parse(format!("{path}: {e}")))?;
    let report = ObsReport::parse(&text).map_err(|e| CheckError::Parse(format!("{path}: {e}")))?;
    if report.is_stream() {
        // Truncation is flagged inline by the summary itself.
        print!("{}", report.stream_summary());
    } else {
        print!("{}", report.summary());
        let digest = report.event_summary();
        if !digest.is_empty() {
            eprint!("{digest}");
        }
        if report.truncated {
            eprintln!(
                "rlcheck: report: {path} is truncated (no totals line); \
                 totals reconstructed from completed root spans"
            );
        }
    }
    let hist_table = report.hist_summary();
    if !hist_table.is_empty() {
        print!("{hist_table}");
    }
    let note = report.unknown_note();
    if !note.is_empty() {
        eprintln!("rlcheck: report: {note}");
    }
    Ok(ExitCode::SUCCESS)
}

/// The `report --dir` mode: renders the persistent metrics journal written
/// by `rlcheck serve --metrics-dir`. Samples from every rotated segment are
/// stitched into runs (a restart shows up as `uptime_ms` resetting), each
/// run's final snapshot is merged, and the percentile table plus per-run
/// time series go to stdout. Truncated tails, zero-length rotated segments,
/// and foreign files in the directory degrade to a skipped-line count on
/// stderr — never a parse failure, never a panic.
fn cmd_report_dir(dir: &str) -> Result<ExitCode, CheckError> {
    let journal = read_journal(std::path::Path::new(dir))
        .map_err(|e| CheckError::Parse(format!("{dir}: {e}")))?;
    print!("{}", render_journal(&journal));
    if journal.skipped_lines > 0 {
        eprintln!(
            "rlcheck: report: {dir}: skipped {} unparsable line(s)",
            journal.skipped_lines
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// The `slo` subcommand: the regression gate. Loads a committed rl-slo/v1
/// baseline (percentile ceilings per histogram family, plus a tolerance),
/// merges the journal the daemon wrote under `--metrics-dir`, and compares.
/// Exit 0 when every observed percentile is within `ceiling × (1 +
/// tolerance)`; exit 1 with one stderr line per violation otherwise, so CI
/// can gate on it directly.
fn cmd_slo(baseline_path: &str, dir: &str) -> Result<ExitCode, CheckError> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| CheckError::Parse(format!("{baseline_path}: {e}")))?;
    let baseline = parse_slo_baseline(&text)
        .map_err(|e| CheckError::Parse(format!("{baseline_path}: {e}")))?;
    let journal = read_journal(std::path::Path::new(dir))
        .map_err(|e| CheckError::Parse(format!("{dir}: {e}")))?;
    let observed = journal.merged_hists();
    if observed.is_empty() {
        return Err(CheckError::Parse(format!(
            "{dir}: journal holds no histogram samples to gate on"
        )));
    }
    let violations = evaluate_slo(&baseline, &observed);
    if violations.is_empty() {
        println!(
            "slo: ok ({} famil{} within tolerance {}%)",
            baseline.families.len(),
            if baseline.families.len() == 1 {
                "y"
            } else {
                "ies"
            },
            baseline.tolerance_pct
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            eprintln!("slo: {v}");
        }
        eprintln!("slo: {} violation(s)", violations.len());
        Ok(ExitCode::FAILURE)
    }
}

/// Live progress heartbeats: a sampler thread that reads the guard's shared
/// atomics through a [`GuardProbe`] and prints one stderr line per period
/// (default 1s; `RL_PROGRESS_MS` overrides, for tests). The probe shares
/// only the `GuardCore` — no metrics, no locks on the hot path — so
/// heartbeats never perturb the run they observe. In batch mode each job
/// builds its own guard, so heartbeats report elapsed wall clock only.
struct ProgressMonitor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
    probe: GuardProbe,
}

impl ProgressMonitor {
    fn start(probe: GuardProbe) -> ProgressMonitor {
        let period = knobs::env_u64("RL_PROGRESS_MS", 1_000).max(1);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&stop);
        let sampler_probe = probe.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*shared;
            let mut done = lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while !*done {
                let (next, timeout) = cv
                    .wait_timeout(done, Duration::from_millis(period))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                done = next;
                if *done || !timeout.timed_out() {
                    continue;
                }
                eprintln!("{}", heartbeat_line(&sampler_probe));
            }
        });
        ProgressMonitor {
            stop,
            handle: Some(handle),
            probe,
        }
    }

    /// Stops the sampler and joins it, so no heartbeat can interleave with
    /// the final summary — then flushes one last heartbeat, so even a run
    /// shorter than the sampling period leaves a progress record.
    fn finish(mut self) {
        let (lock, cv) = &*self.stop;
        *lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        eprintln!("{}", heartbeat_line(&self.probe));
    }
}

/// One heartbeat: elapsed, states (with rate), frontier width, and — when a
/// budget is set — the fraction of each limit consumed. The serialization
/// lives in `rl_obs::Heartbeat::render_line`, shared byte-for-byte with the
/// lines that `serve` streams to subscribers.
fn heartbeat_line(probe: &GuardProbe) -> String {
    format!("rlcheck: [progress] {}", probe.heartbeat().render_line())
}

/// Minimal SIGINT/SIGTERM handling (Unix): the handler stores one flag into
/// a process-global `AtomicBool` — the only async-signal-safe thing it could
/// do — and a watcher thread propagates the flag to the run's
/// [`CancelToken`]. The deciders notice the cancelled token at their next
/// charge poll, unwind with `CheckError::Cancelled`, and the normal exit-3
/// path flushes every observability sink; in serve mode the same token
/// triggers the graceful drain. This module lives in the binary because it
/// is the workspace's only `unsafe` (every library crate
/// `forbid(unsafe_code)`s).
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    use relative_liveness::prelude::CancelToken;

    /// Hand-declared `signal(2)` binding, honoring the vendor-only policy
    /// (no libc crate in the tree).
    #[allow(non_camel_case_types)]
    type sighandler_t = usize;
    extern "C" {
        fn signal(signum: i32, handler: sighandler_t) -> sighandler_t;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// `SIG_DFL`, to restore default disposition after the first signal so
    /// a second Ctrl-C kills a stuck drain instead of being swallowed.
    const SIG_DFL: sighandler_t = 0;

    static SEEN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        SEEN.store(true, Ordering::SeqCst);
    }

    /// Whether a SIGINT/SIGTERM has arrived.
    pub fn seen() -> bool {
        SEEN.load(Ordering::SeqCst)
    }

    /// Installs the handlers and spawns the watcher that cancels `token`
    /// when a signal lands (poll period 25ms, well under a charge
    /// interval), then restores the default disposition so a second signal
    /// terminates the process outright.
    pub fn install(token: CancelToken) {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as sighandler_t);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as sighandler_t);
        }
        std::thread::Builder::new()
            .name("rl-sig-watch".to_owned())
            .spawn(move || loop {
                if SEEN.load(Ordering::SeqCst) {
                    token.cancel();
                    unsafe {
                        signal(SIGINT, SIG_DFL);
                        signal(SIGTERM, SIG_DFL);
                    }
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            })
            .expect("spawning the signal watcher succeeds");
    }
}

/// Non-Unix stub: signals are not wired, runs are stopped by the budget.
#[cfg(not(unix))]
mod sig {
    use relative_liveness::prelude::CancelToken;

    pub fn seen() -> bool {
        false
    }

    pub fn install(_token: CancelToken) {}
}

/// Runs a subcommand behind panic isolation and maps [`CheckError`] onto the
/// documented exit codes.
fn govern(body: impl FnOnce() -> Result<ExitCode, CheckError>) -> ExitCode {
    let outcome = panic::catch_unwind(AssertUnwindSafe(body));
    match outcome {
        Ok(Ok(code)) => code,
        Ok(Err(e @ CheckError::BudgetExceeded { .. }))
        | Ok(Err(e @ CheckError::Cancelled { .. })) => {
            eprintln!("rlcheck: resource budget exhausted before a verdict was reached");
            eprintln!("rlcheck: {e}");
            eprintln!("rlcheck: raise --timeout / --max-states, or simplify the input");
            ExitCode::from(3)
        }
        Ok(Err(e)) => fail(e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            eprintln!("rlcheck: internal panic: {msg}");
            ExitCode::from(101)
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: rlcheck <check|abstract|simplicity|fair|dot|batch|report|serve|top|slo> \
                 <system-file>... [<formula>] [--keep a,b,c] [--steps N] \
                 [--timeout <secs>] [--max-states <n>] [--jobs <n>] \
                 [--manifest <file>] [--formula <f>] \
                 [--socket <path>] [--max-inflight-states <n>] [--queue-cap <n>] \
                 [--job <id>] [--metrics-dir <dir>] [--dir <journal-dir>] \
                 [--stats] [--metrics <file>] [--trace-out <file>] \
                 [--flame-out <file>] [--progress] [--no-op-cache] \
                 [--no-lazy] [--no-filters] [--cache-bytes <n>]";
    let budget = match extract_budget(&mut args) {
        Ok(b) => b,
        Err(e) => return fail(format!("{e}\n{usage}")),
    };
    let obs = match extract_obs(&mut args) {
        Ok(o) => o,
        Err(e) => return fail(format!("{e}\n{usage}")),
    };
    let no_op_cache = extract_no_op_cache(&mut args);
    let no_lazy = extract_no_lazy(&mut args);
    let no_filters = extract_no_filters(&mut args);
    let cache_bytes = match extract_value_flag(&mut args, "--cache-bytes") {
        Ok(None) => None,
        Ok(Some(raw)) => match raw.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => {
                return fail(format!(
                    "--cache-bytes: {raw:?} is not a valid byte count\n{usage}"
                ))
            }
        },
        Err(e) => return fail(format!("{e}\n{usage}")),
    };
    let jobs = match extract_jobs(&mut args) {
        Ok(j) => j,
        Err(e) => return fail(format!("{e}\n{usage}")),
    };
    // Only attach a registry when a sink was requested: default runs keep
    // the guard's metrics hook at `None`, so charges stay branch-only.
    let registry = obs.wants_registry().then(MetricsRegistry::new);
    if let Some(reg) = &registry {
        // The resolved worker count lands in the JSONL header, so traces
        // record how the run was parallelized.
        reg.note_jobs(jobs);
    }
    // Percentile telemetry rides the same opt-in: without a sink the guard's
    // histogram hook stays `None` and the hot paths never call Instant::now.
    let hist_registry = obs.wants_registry().then(HistogramRegistry::new);
    // The event tracer exists only under --trace-out: without it the
    // registry keeps its Rc/Cell hot path and the pool and cache skip the
    // recording branches entirely — tracing is strictly opt-in, and the
    // deterministic counters are bit-for-bit identical either way.
    let tracer = obs.trace.is_some().then(|| Arc::new(Tracer::new()));
    if let (Some(reg), Some(t)) = (&registry, &tracer) {
        reg.set_tracer(Arc::clone(t));
    }
    let Some(cmd) = args.first().cloned() else {
        return fail(usage);
    };
    // The cache and pool handles stay in scope so their telemetry can be
    // folded into the registry as counters after the run.
    let op_cache = (!no_op_cache).then(|| {
        // The deciders re-derive the same intermediate machines (products,
        // subset constructions, complements); one pipeline-wide memo cache
        // answers the repeats. --cache-bytes bounds its resident footprint
        // via cost-aware LRU eviction.
        OpCache::with_limits(tracer.clone(), cache_bytes)
    });
    let pool = (jobs >= 2 && cmd != "serve").then(|| {
        // Parallel kernels: wide BFS layers of the subset construction and
        // the rank-based complement fan out across this pool. Results are
        // bit-for-bit identical to --jobs 1. (Serve mode builds its own
        // pool sized by --jobs, so none is needed here.)
        Arc::new(Pool::with_tracer(jobs, tracer.clone()))
    });
    // One cancel token for the whole process: SIGINT/SIGTERM cancel through
    // it, so budget-style unwinding (exit 3) replaces dying mid-write with
    // half-flushed sinks. Serve mode reads it as the drain trigger.
    let cancel = CancelToken::new();
    sig::install(cancel.clone());
    let mut guard = Guard::with_cancel(budget.clone(), cancel.clone())
        .with_lazy(!no_lazy)
        .with_filters(!no_filters);
    if let Some(reg) = &registry {
        guard = guard.with_metrics(reg.clone());
    }
    if let Some(h) = &hist_registry {
        guard = guard.with_histograms(h.clone());
    }
    if let Some(cache) = &op_cache {
        guard = guard.with_op_cache(cache.clone());
        if let Some(h) = &hist_registry {
            cache.set_histograms(h.clone());
        }
    }
    if let Some(pool) = &pool {
        guard = guard.with_pool(Arc::clone(pool));
        if let Some(h) = &hist_registry {
            pool.set_histograms(h.clone());
        }
    }
    let monitor = obs.progress.then(|| ProgressMonitor::start(guard.probe()));
    let code = match cmd.as_str() {
        "batch" => {
            let manifest = match extract_value_flag(&mut args, "--manifest") {
                Ok(m) => m,
                Err(e) => return fail(format!("{e}\n{usage}")),
            };
            let formula = match extract_value_flag(&mut args, "--formula") {
                Ok(f) => f,
                Err(e) => return fail(format!("{e}\n{usage}")),
            };
            let mut checks = Vec::new();
            if let Some(path) = &manifest {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => return fail(format!("--manifest {path}: {e}")),
                };
                match parse_manifest(&text) {
                    Ok(mut m) => checks.append(&mut m),
                    Err(e) => return fail(format!("--manifest {path}: {e}")),
                }
            }
            let files: Vec<String> = args[1..].to_vec();
            if !files.is_empty() {
                let Some(formula) = formula.clone() else {
                    return fail("batch: positional system files need --formula <f>");
                };
                for path in files {
                    checks.push(CheckSpec::from_path(path, formula.clone()));
                }
            }
            if checks.is_empty() {
                return fail(
                    "batch needs checks: --manifest <file> and/or <system-file>... --formula <f>",
                );
            }
            let shared_cache =
                (!no_op_cache).then(|| OpCache::with_limits(tracer.clone(), cache_bytes));
            if let (Some(cache), Some(h)) = (&shared_cache, &hist_registry) {
                cache.set_histograms(h.clone());
            }
            cmd_batch(
                checks,
                jobs,
                GuardSeed {
                    budget: budget.clone(),
                    cancel: cancel.clone(),
                    lazy: !no_lazy,
                    filters: !no_filters,
                    hists: hist_registry.clone(),
                },
                registry.as_ref(),
                shared_cache,
                tracer.as_ref(),
            )
        }
        "serve" => {
            #[cfg(unix)]
            {
                let socket = match extract_value_flag(&mut args, "--socket") {
                    Ok(Some(s)) => s,
                    Ok(None) => match args.get(1) {
                        Some(s) => s.clone(),
                        None => return fail("serve needs --socket <path>"),
                    },
                    Err(e) => return fail(format!("{e}\n{usage}")),
                };
                let max_inflight_states =
                    match extract_value_flag(&mut args, "--max-inflight-states") {
                        Ok(v) => match v.map(|raw| raw.parse::<u64>()).transpose() {
                            Ok(n) => n,
                            Err(_) => return fail("--max-inflight-states needs a state count"),
                        },
                        Err(e) => return fail(format!("{e}\n{usage}")),
                    };
                let queue_cap = match extract_value_flag(&mut args, "--queue-cap") {
                    Ok(v) => match v.map(|raw| raw.parse::<usize>()).transpose() {
                        Ok(n) => n.unwrap_or(16),
                        Err(_) => return fail("--queue-cap needs a count"),
                    },
                    Err(e) => return fail(format!("{e}\n{usage}")),
                };
                let metrics_dir = match extract_value_flag(&mut args, "--metrics-dir") {
                    Ok(d) => d,
                    Err(e) => return fail(format!("{e}\n{usage}")),
                };
                let config = relative_liveness::serve::ServeConfig {
                    socket,
                    threads: jobs,
                    job_budget: budget.clone(),
                    max_inflight_states,
                    queue_cap,
                    cache: op_cache.clone(),
                    tracer: tracer.clone(),
                    no_lazy,
                    no_filters,
                    metrics_dir,
                };
                let shutdown = cancel.clone();
                let reg = registry.clone();
                govern(move || {
                    relative_liveness::serve::serve(config, shutdown, reg.as_ref())
                        .map(ExitCode::from)
                })
            }
            #[cfg(not(unix))]
            {
                fail("serve requires Unix domain sockets and is not available on this platform")
            }
        }
        "top" => {
            #[cfg(unix)]
            {
                let job = match extract_value_flag(&mut args, "--job") {
                    Ok(v) => match v.map(|raw| raw.parse::<u64>()).transpose() {
                        Ok(n) => n,
                        Err(_) => return fail("--job needs a job id"),
                    },
                    Err(e) => return fail(format!("{e}\n{usage}")),
                };
                match args.get(1) {
                    Some(socket) => govern(|| {
                        relative_liveness::top::run_top(socket, job, &cancel).map(ExitCode::from)
                    }),
                    None => fail("top needs <socket>"),
                }
            }
            #[cfg(not(unix))]
            {
                fail("top requires Unix domain sockets and is not available on this platform")
            }
        }
        "report" => {
            let dir = match extract_value_flag(&mut args, "--dir") {
                Ok(d) => d,
                Err(e) => return fail(format!("{e}\n{usage}")),
            };
            match (dir, args.get(1)) {
                (Some(dir), None) => govern(move || cmd_report_dir(&dir)),
                (None, Some(path)) => govern(|| cmd_report(path)),
                (Some(_), Some(_)) => {
                    fail("report takes either <metrics.jsonl> or --dir <journal-dir>, not both")
                }
                (None, None) => fail("report needs <metrics.jsonl> or --dir <journal-dir>"),
            }
        }
        "slo" => {
            let dir = match extract_value_flag(&mut args, "--dir") {
                Ok(d) => d,
                Err(e) => return fail(format!("{e}\n{usage}")),
            };
            match (args.get(1).cloned(), dir) {
                (Some(baseline), Some(dir)) => govern(move || cmd_slo(&baseline, &dir)),
                _ => fail("slo needs <baseline.json> --dir <journal-dir>"),
            }
        }
        "check" => match (args.get(1), args.get(2)) {
            (Some(path), Some(f)) => govern(|| cmd_check(path, f, &guard)),
            _ => fail(usage),
        },
        "abstract" => match (args.get(1), args.get(2), keep_list(&args)) {
            (Some(path), Some(f), Some(keep)) => govern(|| cmd_abstract(path, f, keep, &guard)),
            _ => fail("abstract needs <system-file> <formula> --keep a,b,c"),
        },
        "simplicity" => match (args.get(1), keep_list(&args)) {
            (Some(path), Some(keep)) => govern(|| cmd_simplicity(path, keep, &guard)),
            _ => fail("simplicity needs <system-file> --keep a,b,c"),
        },
        "fair" => match (args.get(1), args.get(2)) {
            (Some(path), Some(f)) => {
                let steps = args
                    .iter()
                    .position(|a| a == "--steps")
                    .and_then(|i| args.get(i + 1))
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1_000);
                govern(|| cmd_fair(path, f, steps))
            }
            _ => fail(usage),
        },
        "dot" => match args.get(1) {
            Some(path) => govern(|| {
                let ts = load(path)?;
                println!("{}", ts.to_dot("system"));
                Ok(ExitCode::SUCCESS)
            }),
            None => fail(usage),
        },
        other => fail(format!("unknown command {other:?}\n{usage}")),
    };
    if let Some(monitor) = monitor {
        monitor.finish();
    }
    // Non-batch runs fold their pool/cache telemetry in here; batch runs
    // already did so from their own pool and shared cache inside cmd_batch
    // (this call then adds zero to the same counters).
    note_runtime_counters(registry.as_ref(), pool.as_deref(), op_cache.as_ref());
    if sig::seen() {
        eprintln!("rlcheck: interrupted by signal; partial diagnostics follow");
    }
    finish(
        code,
        &obs,
        registry.as_ref(),
        hist_registry.as_ref(),
        tracer.as_deref(),
    )
}

/// Flushes the observability sinks last, after every span has closed —
/// including on the exit-3 path, where the profile shows which phase
/// consumed the budget, and the exit-101 path, where `govern`'s
/// `catch_unwind` has already run every span's drop so the partial profile
/// is still well-formed.
///
/// All sinks render from ONE snapshot taken here: the `--stats` table and
/// the `--metrics` JSONL therefore agree to the byte, which is what lets
/// `rlcheck report` reproduce the live table exactly.
fn finish(
    code: ExitCode,
    obs: &ObsFlags,
    registry: Option<&MetricsRegistry>,
    hists: Option<&HistogramRegistry>,
    tracer: Option<&Tracer>,
) -> ExitCode {
    let Some(reg) = registry else {
        return code;
    };
    let snapshot = reg.snapshot();
    // One histogram snapshot feeds both sinks, mirroring the counter
    // snapshot discipline: --stats and --metrics agree to the byte.
    // Families that never recorded are dropped here so the file and the
    // footer list the same rows.
    let hist_snaps: Vec<(String, HistogramSnapshot)> = hists
        .map(HistogramRegistry::snapshot)
        .unwrap_or_default()
        .into_iter()
        .filter(|(_, snap)| snap.count > 0)
        .collect();
    let events = tracer.map(Tracer::events);
    if obs.stats {
        eprint!("{}", snapshot.summary());
        eprint!("{}", hist_table(&hist_snaps));
    }
    if let Some(path) = &obs.metrics {
        let jsonl = render_jsonl_with_hists(&snapshot, reg.jobs(), events.as_deref(), &hist_snaps);
        if let Err(e) = std::fs::write(path, jsonl) {
            return fail(format!("--metrics {path}: {e}"));
        }
    }
    if let Some(path) = &obs.trace {
        let chrome = chrome_trace_json(events.as_deref().unwrap_or_default());
        let text = relative_liveness::json::to_string_pretty(&chrome)
            .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
        if let Err(e) = std::fs::write(path, text) {
            return fail(format!("--trace-out {path}: {e}"));
        }
    }
    if let Some(path) = &obs.flame {
        if let Err(e) = std::fs::write(path, folded_stacks(&snapshot.records)) {
            return fail(format!("--flame-out {path}: {e}"));
        }
    }
    code
}

/// Renders the `--stats` percentile footer: one row per histogram family
/// with a sample, in the same column layout `rlcheck report` uses for
/// `rl-obs/v3` files, so the live footer and the offline report line up.
/// Empty (no header) when nothing was recorded — percentiles are
/// schedule-dependent, so they live below the deterministic counter table
/// and never perturb it.
fn hist_table(hists: &[(String, HistogramSnapshot)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, snap) in hists {
        if snap.count == 0 {
            continue;
        }
        if out.is_empty() {
            let _ = writeln!(
                out,
                "{:<36} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "p50", "p90", "p99", "max"
            );
        }
        let _ = writeln!(
            out,
            "{name:<36} {:>8} {:>10} {:>10} {:>10} {:>10}",
            snap.count,
            snap.p50(),
            snap.p90(),
            snap.p99(),
            snap.max,
        );
    }
    out
}
