//! `rlcheck serve` — a fault-isolated checking service.
//!
//! A long-running daemon that accepts relative-liveness check jobs over a
//! Unix domain socket, so heavy fan-in traffic shares one warm process and
//! one warm [`OpCache`] instead of paying a fresh CLI start per check of
//! the paper's `pre(L_ω) = pre(L_ω ∩ P)` criterion. Robustness is the
//! design driver; DESIGN.md §12 is the architecture chapter. In brief:
//!
//! * **Wire protocol** — line-delimited JSON, one request object per line,
//!   one reply object per line: `submit`, `status`, `wait`, `cancel`,
//!   `stats`, `metrics`, `subscribe`, `unsubscribe`, `shutdown`. See the
//!   README for examples.
//! * **Percentile telemetry** — a service-global [`HistogramRegistry`]
//!   records queue wait, job wall time, admission latency, subscriber
//!   write stalls, cache probe/lock-wait and pool steal/park latencies,
//!   plus every job's filter-stage histograms (absorbed at completion).
//!   The `metrics` verb exposes it as Prometheus text exposition (or
//!   rl-obs/v3 JSONL), and `--metrics-dir` persists interval snapshots to
//!   a rotating journal that `rlcheck report --dir` renders and
//!   `rlcheck slo` gates on.
//! * **Live streaming** — `subscribe` attaches this connection to the
//!   telemetry plane: heartbeat events sampled from each running job's
//!   [`GuardProbe`] atomics plus the job's tracer events, fanned out
//!   through a per-subscriber bounded ring with drop-oldest backpressure
//!   (`RL_SUBSCRIBER_RING` lines), so a slow subscriber can never stall a
//!   job, a sibling, or drain. Deterministic counters are bit-for-bit
//!   unaffected by subscribers: jobs meter themselves identically whether
//!   or not anyone is watching.
//! * **Isolation** — every job runs on the shared work-stealing [`Pool`]
//!   under its own [`Guard`] (deadline, max-states, cancel token) behind
//!   `catch_unwind`: a poisoned job replies `code 101` and its siblings —
//!   and the process — keep going.
//! * **Admission control** — jobs are charged their declared `max_states`
//!   against a configurable in-flight ceiling. Over the ceiling, jobs
//!   queue (FIFO) up to a queue cap, then are rejected outright:
//!   backpressure instead of OOM.
//! * **Client failure** — a dropped connection cancels that client's
//!   unfinished jobs through their [`CancelToken`]s within one heartbeat,
//!   so abandoned work frees its budget.
//! * **Result retention** — `wait` is a consuming handoff: delivering a
//!   result reaps the job record. Undelivered results are reaped when
//!   their submitting connection closes, or after `RL_RESULT_TTL_MS`
//!   (default 10 min) for orphans, so a resident service's job table
//!   stays bounded no matter how many jobs it ever served. Metrics
//!   shards are captured at completion and outlive the records.
//! * **Graceful drain** — a `shutdown` request or SIGINT/SIGTERM (the CLI
//!   wires the signal token) stops admission, cancels queued jobs, lets
//!   running jobs finish (cancelling them after a grace period), absorbs
//!   every job's metrics shard, and only then lets the CLI flush the
//!   rl-obs sinks.
//! * **Fault injection** — the deterministic `RL_FAULT` points
//!   `job-panic:<id>` (value-matched), `serve-drop-conn:<n>`, and
//!   `serve-drop-sub:<n>` (occurrence-counted) let the integration tests
//!   provoke each failure mode on demand; see [`rl_automata::fault`].

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write as IoWrite};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rl_automata::{fault, Budget, CancelToken, Guard, GuardProbe, OpCache, Pool};
use rl_core::CheckError;
use rl_json::{Json, ObjBuilder, ToJson};
use rl_obs::{
    hist_event_json, knobs, render_prometheus, HistogramRegistry, JournalSample, JournalWriter,
    MetricsRegistry, RegistrySnapshot, StreamBus, StreamSubscription, Tracer,
};

use crate::check::{report_check, CheckSpec, SystemSource};

/// A job with no declared `--max-states` still occupies admission budget;
/// this is its assumed weight (states) against the in-flight ceiling.
pub const DEFAULT_JOB_WEIGHT: u64 = 1 << 20;

/// Configuration of one service instance, assembled by the CLI front end.
pub struct ServeConfig {
    /// Path of the Unix domain socket to listen on.
    pub socket: String,
    /// Worker threads of the shared checking pool.
    pub threads: usize,
    /// Default per-job budget (`--timeout`/`--max-states`); a `submit` may
    /// tighten it with `timeout_ms`/`max_states` fields.
    pub job_budget: Budget,
    /// Admission ceiling: the sum of in-flight jobs' declared max-states
    /// weights may not exceed this. `None` disables admission control.
    pub max_inflight_states: Option<u64>,
    /// Jobs allowed to wait for admission before submits are rejected.
    pub queue_cap: usize,
    /// The shared cross-request operation cache (byte-budgeted via
    /// `--cache-bytes`), if enabled.
    pub cache: Option<OpCache>,
    /// Event-level tracer shared by the pool and the jobs (`--trace-out`).
    pub tracer: Option<Arc<Tracer>>,
    /// Service-wide `--no-lazy`: jobs run the eager materializing pipeline
    /// instead of the lazy fused one. A `submit` may also opt out per job
    /// with a `no_lazy` field.
    pub no_lazy: bool,
    /// Service-wide `--no-filters`: jobs skip the semidecision pre-filter
    /// ladder and always run the exact inclusion decider. A `submit` may
    /// also opt out per job with a `no_filters` field.
    pub no_filters: bool,
    /// Directory of the persistent metrics journal (`--metrics-dir`):
    /// the sampler appends interval snapshots of the service counters and
    /// histograms to rotating JSONL segments that survive restarts and are
    /// rendered by `rlcheck report --dir`.
    pub metrics_dir: Option<String>,
}

/// The heartbeat period: connection reads time out at this cadence (which
/// bounds how fast drains close idle connections) and the accept loop polls
/// at a quarter of it. `RL_HEARTBEAT_MS` overrides, for tests.
fn heartbeat() -> Duration {
    let ms = std::env::var("RL_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100u64);
    Duration::from_millis(ms.max(1))
}

/// How long a drain waits for running jobs before cancelling them.
/// `RL_DRAIN_GRACE_MS` overrides, for tests.
fn drain_grace() -> Duration {
    let ms = std::env::var("RL_DRAIN_GRACE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000u64);
    Duration::from_millis(ms)
}

/// How long an undelivered result is retained for `status`/`wait` pickup
/// once its job is done. The accept loop sweeps expired records so a
/// resident service's job table cannot grow without bound even when
/// clients never collect. `RL_RESULT_TTL_MS` overrides, for tests.
fn result_ttl() -> Duration {
    let ms = std::env::var("RL_RESULT_TTL_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600_000u64);
    Duration::from_millis(ms.max(1))
}

/// How often the fan-out sampler publishes a heartbeat for each running
/// job. Shares `RL_PROGRESS_MS` with the one-shot `--progress` sampler
/// (default one second) since both are the same "how fast do humans need
/// progress" knob.
fn progress_period() -> Duration {
    Duration::from_millis(knobs::env_u64("RL_PROGRESS_MS", 1_000).max(1))
}

/// Per-subscriber ring capacity (buffered event lines). Overflow drops the
/// oldest line and counts it — the knob trades replay completeness for
/// bounded memory per subscriber. `RL_SUBSCRIBER_RING` overrides, for
/// tests (which shrink it to force drops deterministically).
fn ring_capacity() -> usize {
    knobs::env_u64("RL_SUBSCRIBER_RING", 1_024).max(1) as usize
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    /// Waiting for admission capacity.
    Queued,
    /// Admitted; running (or enqueued) on the pool.
    Running,
    /// Finished — result recorded.
    Done,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

/// The outcome of one job, recorded at completion.
struct JobResult {
    /// Exit-code scheme of the CLI: 0 holds, 1 fails, 2 input error,
    /// 3 budget/cancelled, 101 panic.
    code: u8,
    /// The relative-liveness verdict, when one was reached.
    holds: Option<bool>,
    /// The buffered report.
    out: String,
    /// Buffered diagnostics.
    err: String,
    /// The job's metrics shard, absorbed into the parent registry at drain.
    snapshot: Option<RegistrySnapshot>,
}

/// One entry of the job table.
struct JobRecord {
    spec: CheckSpec,
    budget: Budget,
    /// Whether this job runs the lazy fused pipeline (service default,
    /// overridable per submit via `no_lazy`).
    lazy: bool,
    /// Whether this job runs the pre-filter ladder (service default,
    /// overridable per submit via `no_filters`).
    filters: bool,
    /// Admission weight (declared max-states, or [`DEFAULT_JOB_WEIGHT`]).
    weight: u64,
    /// Id of the submitting connection — disconnects cancel by this.
    conn: u64,
    /// When the submit was accepted — start of the `serve/queue_wait_us`
    /// clock, stopped when a worker picks the job up.
    submitted_at: Instant,
    cancel: CancelToken,
    state: JobState,
    result: Option<JobResult>,
    /// When the job settled — starts the undelivered-result TTL clock.
    done_at: Option<Instant>,
    /// The job's telemetry taps, registered when it starts on a worker.
    stream: Option<Arc<JobStream>>,
}

/// The read-only telemetry taps of one running job: the guard probe the
/// sampler reads heartbeats from and the per-job tracer it forwards
/// incrementally. Both are sampling windows — publishing through them
/// never touches the job's execution path, which is what keeps
/// deterministic counters independent of subscribers.
struct JobStream {
    probe: GuardProbe,
    tracer: Arc<Tracer>,
    /// The job's own histogram registry (filter-stage latencies); the
    /// sampler streams its cumulative snapshots as `hist` events.
    hists: HistogramRegistry,
    /// Serializes sampler ticks against the completion flush so the final
    /// heartbeat and trace tail always precede the `done` record.
    publish: Mutex<()>,
    /// Set by the completion flush (under `publish`): a sampler tick that
    /// sampled the job as running but lost the race stops short instead of
    /// publishing a heartbeat after `done` — per job, `done` is last.
    finished: AtomicBool,
}

/// Monotonic service counters, reported by `stats` and folded into the
/// metrics registry at drain as `serve/*` counters.
#[derive(Debug, Clone, Copy, Default)]
struct ServeCounters {
    submitted: u64,
    admitted: u64,
    queued: u64,
    rejected: u64,
    completed: u64,
    panicked: u64,
    cancelled: u64,
    /// High-water mark of the in-flight state budget — the direct witness
    /// that admission never overcommitted the ceiling.
    peak_inflight: u64,
    /// Requests handled, by verb — the `stats` reply's `requests` object.
    verbs: VerbCounters,
}

/// Per-verb request counters (every parsed request with a `cmd` counts,
/// including ones that then fail validation).
#[derive(Debug, Clone, Copy, Default)]
struct VerbCounters {
    submit: u64,
    status: u64,
    wait: u64,
    cancel: u64,
    stats: u64,
    metrics: u64,
    subscribe: u64,
    unsubscribe: u64,
    shutdown: u64,
    unknown: u64,
}

/// The mutable half of the server, behind one mutex.
struct Table {
    next_job: u64,
    /// Sum of the weights of `Running` jobs.
    inflight: u64,
    /// Job ids waiting for admission, in submission order.
    queue: VecDeque<u64>,
    entries: HashMap<u64, JobRecord>,
    /// Metrics shards of settled jobs, in completion order. Kept apart
    /// from `entries` because job records are reaped once their result is
    /// delivered, while the shards must survive until the drain absorbs
    /// them (sorted by job id) into the parent registry.
    shards: Vec<(u64, RegistrySnapshot)>,
    draining: bool,
    counters: ServeCounters,
}

/// Shared server state: the job table plus the immutable plumbing.
struct Core {
    jobs: Mutex<Table>,
    /// Notified on every completion, admission, or drain transition.
    changed: Condvar,
    pool: Pool,
    cache: Option<OpCache>,
    tracer: Option<Arc<Tracer>>,
    /// Whether jobs should ship their metrics shards home for the drain
    /// (jobs always meter themselves — see [`run_job`] — so subscriber
    /// presence can never change what gets counted).
    want_snapshots: bool,
    max_inflight: Option<u64>,
    queue_cap: usize,
    default_budget: Budget,
    /// Service-wide lazy opt-out (`--no-lazy`), the default for submits
    /// that carry no `no_lazy` field.
    no_lazy: bool,
    /// Service-wide filter opt-out (`--no-filters`), the default for
    /// submits that carry no `no_filters` field.
    no_filters: bool,
    /// The subscriber fan-out plane.
    bus: StreamBus,
    /// Service-global percentile plane: queue wait, job wall time,
    /// admission latency, subscriber write stalls, the shared cache's and
    /// pool's latencies, plus every finished job's filter-stage histograms
    /// (absorbed at completion). Exposed by the `metrics` verb and
    /// journaled by the sampler.
    hists: HistogramRegistry,
    /// The persistent metrics journal (`--metrics-dir`), appended by the
    /// sampler thread and once more at drain.
    journal: Option<Mutex<JournalWriter>>,
    /// When the service started — the `stats` reply's `uptime_ms`.
    started: Instant,
    /// Wall-clock start time stamped into every journal sample, so the
    /// reader can tell two runs apart even when their uptimes never
    /// overlap enough for the uptime-drop heuristic.
    run_id: u64,
}

impl Core {
    fn lock(&self) -> MutexGuard<'_, Table> {
        self.jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn draining(&self) -> bool {
        self.lock().draining
    }
}

/// What the connection loop should do after writing a reply.
enum Action {
    /// Keep reading requests.
    Continue,
    /// Close this connection (a `shutdown` acknowledgment).
    Close,
}

/// How a submit was admitted.
enum Admission {
    Run,
    Queue,
    Reject(String),
}

fn admission_decision(t: &Table, core: &Core, weight: u64) -> Admission {
    if t.draining {
        return Admission::Reject("server is draining".to_owned());
    }
    let Some(cap) = core.max_inflight else {
        return Admission::Run;
    };
    if weight > cap {
        return Admission::Reject(format!(
            "declared budget of {weight} states exceeds the admission ceiling of {cap}"
        ));
    }
    if t.inflight + weight <= cap {
        Admission::Run
    } else if t.queue.len() < core.queue_cap {
        Admission::Queue
    } else {
        Admission::Reject(format!(
            "in-flight state budget exhausted ({} of {cap} states in flight, queue full)",
            t.inflight
        ))
    }
}

/// Flips `id` to `Running` and charges its weight against the in-flight
/// budget. Must run in the SAME lock scope as the decision to admit:
/// charging under a later, separate lock acquisition would let concurrent
/// submits — or the re-admission loop itself — judge the ceiling against
/// a stale in-flight sum and overcommit it many times over.
fn charge_locked(t: &mut Table, id: u64) {
    if let Some(e) = t.entries.get_mut(&id) {
        e.state = JobState::Running;
        t.inflight += e.weight;
        t.counters.admitted += 1;
        t.counters.peak_inflight = t.counters.peak_inflight.max(t.inflight);
    }
}

/// Hands an already-charged (`Running`) job to the pool. The table lock
/// must NOT be held.
fn spawn_job(core: &Arc<Core>, id: u64) {
    let worker_core = Arc::clone(core);
    core.pool.execute(move || run_job(&worker_core, id));
}

/// Marks `id` done with `result` under the table lock: moves the job's
/// metrics shard to the drain-ordered shard list, stamps the retention
/// clock, and counts the completion.
fn settle_locked(t: &mut Table, id: u64, mut result: JobResult) {
    if !t.entries.contains_key(&id) {
        return;
    }
    if let Some(shard) = result.snapshot.take() {
        t.shards.push((id, shard));
    }
    let e = t.entries.get_mut(&id).expect("presence checked above");
    e.state = JobState::Done;
    e.done_at = Some(Instant::now());
    e.result = Some(result);
    t.counters.completed += 1;
}

/// Executes one job on a pool worker: builds the per-job guard, runs the
/// shared check pipeline behind `catch_unwind`, and records the result.
fn run_job(core: &Arc<Core>, id: u64) {
    let (spec, budget, cancel, lazy, filters, submitted_at) = {
        let t = core.lock();
        let Some(e) = t.entries.get(&id) else {
            return;
        };
        (
            e.spec.clone(),
            e.budget.clone(),
            e.cancel.clone(),
            e.lazy,
            e.filters,
            e.submitted_at,
        )
    };
    core.hists
        .hist("serve/queue_wait_us")
        .record_elapsed_us(submitted_at);
    // The shard registry lives outside the unwind boundary so a panicking
    // job still ships its partial spans (closed-so-far) home. Every job
    // meters itself into a per-job registry and tracer unconditionally:
    // subscribers only *read* the resulting probe/tracer, so whether
    // anyone is watching cannot change what the job executes or counts.
    let reg = MetricsRegistry::new();
    let job_tracer = Arc::new(Tracer::new());
    let global_offset = core.tracer.as_ref().map(|t| t.now_us());
    reg.set_tracer(Arc::clone(&job_tracer));
    let was_cancelled = cancel.clone();
    // The per-job histogram registry keeps this job's filter-stage latency
    // percentiles separable on the stream; the whole shard is absorbed
    // into the service-global registry once the job settles.
    let job_hists = HistogramRegistry::new();
    let mut guard = Guard::with_cancel(budget, cancel)
        .with_lazy(lazy)
        .with_filters(filters)
        .with_metrics(reg.clone())
        .with_histograms(job_hists.clone());
    if let Some(c) = &core.cache {
        guard = guard.with_op_cache(c.clone());
    }
    let stream = Arc::new(JobStream {
        probe: guard.probe(),
        tracer: Arc::clone(&job_tracer),
        hists: job_hists.clone(),
        publish: Mutex::new(()),
        finished: AtomicBool::new(false),
    });
    {
        let mut t = core.lock();
        if let Some(e) = t.entries.get_mut(&id) {
            e.stream = Some(Arc::clone(&stream));
        }
    }
    let wall_started = Instant::now();
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        if fault::armed_value("job-panic") == Some(id) {
            panic!("injected panic (RL_FAULT=job-panic:{id})");
        }
        let mut out = String::new();
        let mut err = String::new();
        let code = report_check(&spec, &guard, &mut out, &mut err);
        let holds = matches!(code, 0 | 1).then(|| code == 0);
        (code, holds, out, err)
    }));
    core.hists
        .hist("serve/job_wall_us")
        .record_elapsed_us(wall_started);
    let result = match outcome {
        Ok((code, holds, out, err)) => JobResult {
            code,
            holds,
            out,
            err,
            snapshot: core.want_snapshots.then(|| reg.snapshot()),
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            JobResult {
                code: 101,
                holds: None,
                out: String::new(),
                err: format!("rlcheck: internal panic: {msg}\n"),
                snapshot: core.want_snapshots.then(|| reg.snapshot()),
            }
        }
    };
    // Final stream flush — last heartbeat, trace tail, `done` — before the
    // result settles, so a subscriber always sees telemetry precede the
    // job's completion.
    publish_job_final(core, id, &stream, result.code);
    // Merge the job's timeline into the global tracer (`--trace-out`),
    // still on this worker thread — inside the pool's task bracket — so
    // per-track B/E nesting stays valid in the merged stream.
    if let Some((global, offset)) = core.tracer.as_ref().zip(global_offset) {
        global.absorb_events(offset, &job_tracer.events());
    }
    // Fold the job's filter-stage histograms into the service-global
    // registry so the `metrics` verb and the journal aggregate across jobs.
    core.hists.absorb(&job_hists.snapshot());
    complete(core, id, result, was_cancelled.is_cancelled());
}

/// Serializes `value` and fans it out to subscribers following `job`.
fn publish_json(core: &Core, job: u64, value: &Json) {
    if let Ok(text) = rl_json::to_string(value) {
        core.bus.publish(job, &text);
    }
}

/// The `{"event":"done",...}` record closing a job's stream.
fn done_json(id: u64, code: u8) -> Json {
    ObjBuilder::new()
        .field("event", "done")
        .field("job", id)
        .field("code", code)
        .build()
}

/// One heartbeat sample for `id`: the probe's atomics plus live cache
/// residency, tagged with the job id.
fn job_heartbeat_json(core: &Core, id: u64, stream: &JobStream) -> Json {
    let mut hb = stream.probe.heartbeat();
    hb.job = Some(id);
    if let Some(cache) = &core.cache {
        hb.cache_resident_bytes = Some(cache.resident_bytes() as u64);
        hb.cache_evictions = Some(cache.evictions() as u64);
        hb.cache_hits = Some(cache.hits() as u64);
        hb.cache_misses = Some(cache.misses() as u64);
    }
    hb.to_json()
}

/// Forwards every tracer event recorded since the last tick, tagged with
/// the job id (the wire addition `rlcheck report` tolerates and `top`
/// keys on).
fn publish_job_trace(core: &Core, id: u64, stream: &JobStream) {
    for e in stream.tracer.drain_new() {
        let mut obj = e.to_json();
        if let Json::Obj(fields) = &mut obj {
            fields.push(("job".to_owned(), Json::Int(id as i64)));
        }
        publish_json(core, id, &obj);
    }
}

/// Streams the job's cumulative histogram snapshots as `hist` events.
/// Snapshots repeat and grow tick over tick; consumers keep the latest per
/// `(job, family)` (`rlcheck report`/`top` both do), so re-sending is
/// idempotent rather than double-counting.
fn publish_job_hists(core: &Core, id: u64, stream: &JobStream) {
    for (name, snap) in stream.hists.snapshot() {
        if snap.count > 0 {
            publish_json(core, id, &hist_event_json(&name, Some(id), &snap));
        }
    }
}

/// One sampler tick for a running job: a heartbeat, then the fresh trace
/// events, then the histogram snapshots.
fn publish_job_tick(core: &Core, id: u64, stream: &JobStream) {
    let _order = stream
        .publish
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if stream.finished.load(Ordering::Acquire) {
        return;
    }
    publish_json(core, id, &job_heartbeat_json(core, id, stream));
    publish_job_trace(core, id, stream);
    publish_job_hists(core, id, stream);
}

/// The completion flush: guarantees at least one heartbeat and the whole
/// trace tail are published before the `done` record, even for jobs
/// shorter than one sampler period.
fn publish_job_final(core: &Core, id: u64, stream: &JobStream, code: u8) {
    let _order = stream
        .publish
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    publish_json(core, id, &job_heartbeat_json(core, id, stream));
    publish_job_trace(core, id, stream);
    publish_job_hists(core, id, stream);
    publish_json(core, id, &done_json(id, code));
    stream.finished.store(true, Ordering::Release);
}

/// Records a finished job, releases its admission weight, and admits as
/// many queued jobs as now fit.
fn complete(core: &Arc<Core>, id: u64, result: JobResult, was_cancelled: bool) {
    let mut to_spawn = Vec::new();
    {
        let mut t = core.lock();
        let Some(e) = t.entries.get(&id) else {
            return;
        };
        let weight = e.weight;
        let code = result.code;
        settle_locked(&mut t, id, result);
        t.inflight = t.inflight.saturating_sub(weight);
        if code == 101 {
            t.counters.panicked += 1;
        }
        if code == 3 && was_cancelled {
            t.counters.cancelled += 1;
        }
        // FIFO admission from the queue, head first, while capacity lasts.
        // Each admitted job is charged HERE, in this lock scope, so the
        // next head is judged against a budget that already includes the
        // jobs admitted this round — only the pool handoff is deferred.
        // Charging later would admit every queued job that individually
        // fits and overcommit the ceiling by the queue depth.
        while let Some(&head) = t.queue.front() {
            if t.draining {
                break;
            }
            match t.entries.get(&head) {
                None => {
                    t.queue.pop_front(); // stale id; drop it
                }
                Some(h) => {
                    let fits = core
                        .max_inflight
                        .is_none_or(|cap| t.inflight + h.weight <= cap);
                    if !fits {
                        break;
                    }
                    t.queue.pop_front();
                    charge_locked(&mut t, head);
                    to_spawn.push(head);
                }
            }
        }
    }
    core.changed.notify_all();
    for id in to_spawn {
        spawn_job(core, id);
    }
}

/// Cancels every unfinished job submitted by connection `conn` — the
/// disconnect path: abandoned jobs free their budget.
fn cancel_conn_jobs(core: &Arc<Core>, conn: u64) {
    let mut queued_now_dead = Vec::new();
    let mut settled: Vec<u64> = Vec::new();
    {
        let mut t = core.lock();
        let ids: Vec<u64> = t
            .entries
            .iter()
            .filter(|(_, e)| e.conn == conn && e.state != JobState::Done)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            let e = &t.entries[&id];
            e.cancel.cancel();
            if e.state == JobState::Queued {
                queued_now_dead.push(id);
            }
        }
        // Queued jobs never reached a worker; finish them here so waiters
        // and the drain see them settle.
        for id in queued_now_dead {
            t.queue.retain(|q| *q != id);
            let Some(e) = t.entries.get(&id) else {
                continue;
            };
            let name = e.spec.source.display_name().to_owned();
            settle_locked(
                &mut t,
                id,
                JobResult {
                    code: 3,
                    holds: None,
                    out: String::new(),
                    err: format!(
                        "rlcheck: [{name}] cancelled before start (client disconnected)\n"
                    ),
                    snapshot: None,
                },
            );
            t.counters.cancelled += 1;
            settled.push(id);
        }
        // Results this connection finished but never collected can only
        // rot now that it is gone; reap them instead of waiting out the
        // TTL. Jobs it leaves Running settle later and stay retrievable
        // (another client may `wait` them) until delivery or expiry.
        t.entries
            .retain(|_, e| e.conn != conn || e.state != JobState::Done);
    }
    // Jobs that settled without ever starting still close their streams.
    for id in settled {
        publish_json(core, id, &done_json(id, 3));
    }
    core.changed.notify_all();
}

/// A `status`/`wait` reply for job `id` under the table lock.
fn status_reply(t: &Table, id: u64) -> Json {
    let Some(e) = t.entries.get(&id) else {
        return error_reply(format!("no such job {id}"));
    };
    let mut b = ObjBuilder::new()
        .field("ok", true)
        .field("id", id)
        .field("status", e.state.as_str());
    if let Some(r) = &e.result {
        b = b
            .field("code", r.code)
            .field("holds", r.holds)
            .field("output", r.out.as_str())
            .field("diagnostics", r.err.as_str());
    }
    b.build()
}

fn error_reply(msg: impl std::fmt::Display) -> Json {
    ObjBuilder::new()
        .field("ok", false)
        .field("error", msg.to_string())
        .build()
}

/// Field access helpers over the wire JSON.
fn str_field(v: &Json, key: &str) -> Option<String> {
    match v.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn u64_field(v: &Json, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

fn bool_field(v: &Json, key: &str) -> Option<bool> {
    match v.get(key) {
        Some(Json::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Per-connection subscription state, owned by the connection thread and
/// reaped (via [`StreamBus::unsubscribe`]) when the connection closes.
#[derive(Default)]
struct ConnState {
    sub: Option<Arc<StreamSubscription>>,
    /// Drop count already reported to this client via `dropped` notices.
    dropped_seen: u64,
}

/// Handles one request line; returns the reply and what to do next.
fn handle_request(
    core: &Arc<Core>,
    conn: u64,
    state: &mut ConnState,
    line: &str,
) -> (Json, Action) {
    let v = match rl_json::parse(line) {
        Ok(v) => v,
        Err(e) => return (error_reply(format!("bad request: {e}")), Action::Continue),
    };
    let Some(cmd) = str_field(&v, "cmd") else {
        return (error_reply("bad request: missing `cmd`"), Action::Continue);
    };
    {
        let mut t = core.lock();
        let verbs = &mut t.counters.verbs;
        match cmd.as_str() {
            "submit" => verbs.submit += 1,
            "status" => verbs.status += 1,
            "wait" => verbs.wait += 1,
            "cancel" => verbs.cancel += 1,
            "stats" => verbs.stats += 1,
            "metrics" => verbs.metrics += 1,
            "subscribe" => verbs.subscribe += 1,
            "unsubscribe" => verbs.unsubscribe += 1,
            "shutdown" => verbs.shutdown += 1,
            _ => verbs.unknown += 1,
        }
    }
    match cmd.as_str() {
        "submit" => (handle_submit(core, conn, &v), Action::Continue),
        "status" => {
            let Some(id) = u64_field(&v, "id") else {
                return (error_reply("status needs `id`"), Action::Continue);
            };
            (status_reply(&core.lock(), id), Action::Continue)
        }
        "wait" => {
            let Some(id) = u64_field(&v, "id") else {
                return (error_reply("wait needs `id`"), Action::Continue);
            };
            let mut t = core.lock();
            loop {
                match t.entries.get(&id) {
                    // Unknown, already delivered, or reaped mid-wait.
                    None => return (error_reply(format!("no such job {id}")), Action::Continue),
                    Some(e) if e.state == JobState::Done => break,
                    Some(_) => {}
                }
                t = core
                    .changed
                    .wait_timeout(t, heartbeat())
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
            // Delivery consumes the record: `wait` is the result handoff
            // (at most one client receives it), and reaping here is what
            // keeps a long-lived daemon's job table bounded. The metrics
            // shard already moved to the drain list at completion.
            let reply = status_reply(&t, id);
            t.entries.remove(&id);
            (reply, Action::Continue)
        }
        "cancel" => {
            let Some(id) = u64_field(&v, "id") else {
                return (error_reply("cancel needs `id`"), Action::Continue);
            };
            let t = core.lock();
            match t.entries.get(&id) {
                Some(e) => {
                    e.cancel.cancel();
                    (
                        ObjBuilder::new().field("ok", true).field("id", id).build(),
                        Action::Continue,
                    )
                }
                None => (error_reply(format!("no such job {id}")), Action::Continue),
            }
        }
        "stats" => (stats_reply(core), Action::Continue),
        "metrics" => (
            metrics_reply(core, str_field(&v, "format").as_deref()),
            Action::Continue,
        ),
        "subscribe" => {
            let filter = match v.get("id") {
                None => None,
                Some(Json::Str(s)) if s == "*" => None,
                Some(Json::Int(i)) if *i >= 0 => Some(*i as u64),
                _ => {
                    return (
                        error_reply("subscribe `id` must be a job id or \"*\""),
                        Action::Continue,
                    )
                }
            };
            // One subscription per connection; re-subscribing replaces it
            // (and re-arms the drop accounting from zero).
            if let Some(old) = state.sub.take() {
                core.bus.unsubscribe(old.id());
            }
            let sub = core.bus.subscribe(filter, ring_capacity());
            let reply = ObjBuilder::new()
                .field("ok", true)
                .field(
                    "subscribed",
                    match filter {
                        Some(id) => Json::Int(id as i64),
                        None => Json::Str("*".to_owned()),
                    },
                )
                .field("ring_capacity", sub.capacity())
                .build();
            state.sub = Some(sub);
            state.dropped_seen = 0;
            (reply, Action::Continue)
        }
        "unsubscribe" => {
            let had = state.sub.take();
            if let Some(sub) = &had {
                core.bus.unsubscribe(sub.id());
            }
            (
                ObjBuilder::new()
                    .field("ok", true)
                    .field("unsubscribed", had.is_some())
                    .build(),
                Action::Continue,
            )
        }
        "shutdown" => {
            {
                let mut t = core.lock();
                t.draining = true;
            }
            core.changed.notify_all();
            (
                ObjBuilder::new()
                    .field("ok", true)
                    .field("status", "draining")
                    .build(),
                Action::Close,
            )
        }
        other => (
            error_reply(format!("unknown cmd {other:?}")),
            Action::Continue,
        ),
    }
}

/// The live service counter totals as named values — the counter half of
/// the `metrics` exposition and of every journal sample.
fn service_counters(core: &Core) -> Vec<(String, u64)> {
    let (c, inflight, queue_depth) = {
        let t = core.lock();
        (t.counters, t.inflight, t.queue.len() as u64)
    };
    let own = |name: &str, v: u64| (name.to_owned(), v);
    let mut out = vec![
        own("serve/submitted", c.submitted),
        own("serve/admitted", c.admitted),
        own("serve/queued", c.queued),
        own("serve/rejected", c.rejected),
        own("serve/completed", c.completed),
        own("serve/panicked", c.panicked),
        own("serve/cancelled", c.cancelled),
        own("serve/inflight_states", inflight),
        own("serve/peak_inflight_states", c.peak_inflight),
        own("serve/queue_depth", queue_depth),
        own("serve/subscribers", core.bus.subscriber_count() as u64),
        own("serve/events_dropped", core.bus.dropped_events()),
    ];
    if let Some(cache) = &core.cache {
        out.push(own("opcache/hits", cache.hits() as u64));
        out.push(own("opcache/misses", cache.misses() as u64));
        out.push(own("opcache/evictions", cache.evictions() as u64));
        out.push(own("opcache/resident_bytes", cache.resident_bytes() as u64));
    }
    out
}

/// The `metrics` verb: the live counters and histograms, rendered as
/// Prometheus text exposition (default) or as rl-obs/v3 `hist` JSONL
/// lines (`"format":"jsonl"`), carried in the reply's `body` field.
fn metrics_reply(core: &Arc<Core>, format: Option<&str>) -> Json {
    let counters = service_counters(core);
    let hists = core.hists.snapshot();
    match format {
        None | Some("prometheus") => ObjBuilder::new()
            .field("ok", true)
            .field("format", "prometheus")
            .field("body", render_prometheus(&counters, &hists))
            .build(),
        Some("jsonl") => {
            let mut body = String::new();
            for (name, snap) in &hists {
                if let Ok(line) = rl_json::to_string(&hist_event_json(name, None, snap)) {
                    body.push_str(&line);
                    body.push('\n');
                }
            }
            ObjBuilder::new()
                .field("ok", true)
                .field("format", "jsonl")
                .field("body", body)
                .build()
        }
        Some(other) => error_reply(format!(
            "metrics `format` {other:?} must be \"prometheus\" or \"jsonl\""
        )),
    }
}

/// Appends one interval snapshot of the service counters and histograms to
/// the metrics journal (no-op without `--metrics-dir`). Write errors are
/// reported on stderr but never disturb the service.
fn journal_sample(core: &Core) {
    let Some(journal) = &core.journal else {
        return;
    };
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let sample = JournalSample {
        ts_ms,
        uptime_ms: core.started.elapsed().as_millis() as u64,
        run_id: core.run_id,
        counters: service_counters(core),
        hists: core.hists.snapshot(),
    };
    let mut w = journal
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Err(e) = w.append(&sample) {
        eprintln!("rlcheck: serve: metrics journal: {e}");
    }
}

fn stats_reply(core: &Arc<Core>) -> Json {
    let (c, inflight, queue_depth, draining) = {
        let t = core.lock();
        (t.counters, t.inflight, t.queue.len(), t.draining)
    };
    let requests = ObjBuilder::new()
        .field("submit", c.verbs.submit)
        .field("status", c.verbs.status)
        .field("wait", c.verbs.wait)
        .field("cancel", c.verbs.cancel)
        .field("stats", c.verbs.stats)
        .field("metrics", c.verbs.metrics)
        .field("subscribe", c.verbs.subscribe)
        .field("unsubscribe", c.verbs.unsubscribe)
        .field("shutdown", c.verbs.shutdown)
        .field("unknown", c.verbs.unknown)
        .build();
    let mut b = ObjBuilder::new()
        .field("ok", true)
        .field("uptime_ms", core.started.elapsed().as_millis() as u64)
        .field("requests", requests)
        .field("subscribers", core.bus.subscriber_count())
        .field("events_dropped", core.bus.dropped_events())
        .field("submitted", c.submitted)
        .field("admitted", c.admitted)
        .field("queued", c.queued)
        .field("rejected", c.rejected)
        .field("completed", c.completed)
        .field("panicked", c.panicked)
        .field("cancelled", c.cancelled)
        .field("inflight_states", inflight)
        .field("peak_inflight_states", c.peak_inflight)
        .field("queue_depth", queue_depth)
        .field("draining", draining);
    if let Some(cache) = &core.cache {
        b = b
            .field("cache_resident_bytes", cache.resident_bytes())
            .field("cache_evictions", cache.evictions());
        if let Some(budget) = cache.byte_budget() {
            b = b.field("cache_bytes_budget", budget);
        }
    }
    b.build()
}

fn handle_submit(core: &Arc<Core>, conn: u64, v: &Json) -> Json {
    let Some(formula) = str_field(v, "formula") else {
        return error_reply("submit needs `formula`");
    };
    let source = match (str_field(v, "path"), str_field(v, "system")) {
        (Some(path), None) => SystemSource::Path(path),
        (None, Some(text)) => SystemSource::Inline {
            name: str_field(v, "name").unwrap_or_else(|| "inline".to_owned()),
            text,
        },
        _ => return error_reply("submit needs exactly one of `path` or `system`"),
    };
    let mut budget = core.default_budget.clone();
    if let Some(ms) = u64_field(v, "timeout_ms") {
        budget.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(n) = u64_field(v, "max_states") {
        budget.max_states = Some(n as usize);
    }
    let weight = budget.max_states.map_or(DEFAULT_JOB_WEIGHT, |n| n as u64);
    let lazy = !bool_field(v, "no_lazy").unwrap_or(core.no_lazy);
    let filters = !bool_field(v, "no_filters").unwrap_or(core.no_filters);
    let spec = CheckSpec { source, formula };

    let admit_started = Instant::now();
    let (id, decision) = {
        let mut t = core.lock();
        t.counters.submitted += 1;
        let decision = admission_decision(&t, core, weight);
        if let Admission::Reject(reason) = &decision {
            t.counters.rejected += 1;
            drop(t);
            core.hists
                .hist("serve/admission_us")
                .record_elapsed_us(admit_started);
            return ObjBuilder::new()
                .field("ok", false)
                .field("status", "rejected")
                .field("error", format!("rejected: {reason}"))
                .build();
        }
        let id = t.next_job;
        t.next_job += 1;
        t.entries.insert(
            id,
            JobRecord {
                spec,
                budget,
                lazy,
                filters,
                weight,
                conn,
                submitted_at: Instant::now(),
                cancel: CancelToken::new(),
                state: JobState::Queued,
                result: None,
                done_at: None,
                stream: None,
            },
        );
        // An admitted job is charged in the SAME lock scope as the
        // admission decision — deferring the charge to a later lock
        // acquisition would let a concurrent submit read the stale
        // in-flight sum and be admitted into the same capacity.
        if matches!(decision, Admission::Queue) {
            t.counters.queued += 1;
            t.queue.push_back(id);
        } else {
            charge_locked(&mut t, id);
        }
        (id, decision)
    };
    core.hists
        .hist("serve/admission_us")
        .record_elapsed_us(admit_started);
    let status = match decision {
        Admission::Queue => "queued",
        _ => {
            spawn_job(core, id);
            "running"
        }
    };
    ObjBuilder::new()
        .field("ok", true)
        .field("id", id)
        .field("status", status)
        .build()
}

/// One client connection: a heartbeat-paced read loop over line-delimited
/// JSON. EOF or a read error is a disconnect, which cancels the
/// connection's unfinished jobs.
fn handle_conn(core: Arc<Core>, mut stream: UnixStream, conn: u64) {
    let beat = heartbeat();
    let _ = stream.set_read_timeout(Some(beat));
    // A client that stops reading (full socket buffer) must not pin this
    // thread in `write_all` forever — the drain joins every connection
    // thread, so one stalled reader would hang graceful shutdown. A write
    // that cannot make progress within the drain grace is a disconnect.
    let _ = stream.set_write_timeout(Some(drain_grace()));
    let mut state = ConnState::default();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Drain complete lines first.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (reply, action) = handle_request(&core, conn, &mut state, line);
            let text = rl_json::to_string(&reply)
                .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"render: {e}\"}}"));
            if stream.write_all(format!("{text}\n").as_bytes()).is_err() {
                break 'conn;
            }
            if fault::fires("serve-drop-conn") {
                // Injected server-side connection drop: exercise the same
                // cleanup path a client crash takes.
                break 'conn;
            }
            if matches!(action, Action::Close) {
                break 'conn;
            }
        }
        if !flush_subscription(&core, &mut stream, &mut state) {
            break 'conn;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // EOF: client closed or died
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Heartbeat tick. Idle connections don't outlive a drain —
                // except a draining subscriber, which keeps receiving until
                // its followed jobs have settled (the drain severs it by
                // joining this thread only after every job is done).
                if core.draining() && state.sub.is_none() {
                    break;
                }
                if core.draining()
                    && core
                        .lock()
                        .entries
                        .values()
                        .all(|e| e.state == JobState::Done)
                {
                    // Flush whatever the settled jobs left, then close.
                    let _ = flush_subscription(&core, &mut stream, &mut state);
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Reap this connection's subscription so the fan-out stops buffering
    // for a reader that is gone.
    if let Some(sub) = state.sub.take() {
        core.bus.unsubscribe(sub.id());
    }
    cancel_conn_jobs(&core, conn);
}

/// Writes everything the connection's subscription has buffered: event
/// lines oldest-first, then a `dropped` notice when backpressure discarded
/// lines since the last report. Returns `false` when the connection should
/// be severed (write failure, or the injected `serve-drop-sub` fault).
fn flush_subscription(core: &Core, stream: &mut UnixStream, state: &mut ConnState) -> bool {
    let Some(sub) = &state.sub else {
        return true;
    };
    let lines = sub.drain();
    let dropped = sub.dropped();
    let mut payload = String::new();
    for line in &lines {
        payload.push_str(line);
        payload.push('\n');
    }
    if dropped > state.dropped_seen {
        let delta = dropped - state.dropped_seen;
        state.dropped_seen = dropped;
        payload.push_str(&format!(
            "{{\"event\":\"dropped\",\"count\":{delta},\"total\":{dropped}}}\n"
        ));
    }
    if payload.is_empty() {
        return true;
    }
    if fault::fires("serve-drop-sub") {
        // Injected mid-stream subscriber drop: exercise the reap path a
        // subscriber crash takes.
        return false;
    }
    // A slow subscriber shows up here as write-stall latency — the
    // percentile witness that backpressure is on the socket, not the jobs.
    let write_started = Instant::now();
    let ok = stream.write_all(payload.as_bytes()).is_ok();
    core.hists
        .hist("serve/write_stall_us")
        .record_elapsed_us(write_started);
    ok
}

/// Runs the service until a `shutdown` request or the external `shutdown`
/// token (the CLI's signal handler) triggers a graceful drain. Returns the
/// process exit code — 0 for a clean drain.
///
/// Per-job metrics shards are absorbed into `registry` (as `job<id>/`
/// prefixes, in job-id order) and the `serve/*` counters are recorded
/// there too; the caller flushes the sinks afterwards, so `--stats`,
/// `--metrics`, `--trace-out`, and `--flame-out` all work for a drained
/// service exactly as they do for a one-shot check.
///
/// # Errors
///
/// Returns [`CheckError::Parse`] when the socket cannot be bound.
pub fn serve(
    config: ServeConfig,
    shutdown: CancelToken,
    registry: Option<&MetricsRegistry>,
) -> Result<u8, CheckError> {
    let socket = config.socket.clone();
    // A leftover socket file is either stale (its server died — safe to
    // take over) or live (unlinking it would silently orphan a running
    // server: still up, no longer reachable). Probe it: a successful
    // connect means a server answered, so refuse to start; ECONNREFUSED
    // means nobody is accepting, so the file is stale and removable.
    if std::path::Path::new(&socket).exists() {
        match UnixStream::connect(&socket) {
            Ok(_) => {
                return Err(CheckError::Parse(format!(
                    "serve: {socket}: a server is already listening on this socket"
                )));
            }
            Err(e) if e.kind() == ErrorKind::ConnectionRefused => {
                let _ = std::fs::remove_file(&socket);
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {} // raced away
            Err(_) => {} // leave the file; bind below reports the problem
        }
    }
    let listener = UnixListener::bind(&socket)
        .map_err(|e| CheckError::Parse(format!("serve: {socket}: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CheckError::Parse(format!("serve: {socket}: {e}")))?;

    // Open the metrics journal before accepting work: a misconfigured
    // `--metrics-dir` should fail the start, not silently drop telemetry.
    let journal = match &config.metrics_dir {
        Some(dir) => Some(Mutex::new(
            JournalWriter::open(std::path::Path::new(dir), 0)
                .map_err(|e| CheckError::Parse(format!("serve: metrics journal {dir}: {e}")))?,
        )),
        None => None,
    };

    let core = Arc::new(Core {
        jobs: Mutex::new(Table {
            next_job: 1,
            inflight: 0,
            queue: VecDeque::new(),
            entries: HashMap::new(),
            shards: Vec::new(),
            draining: false,
            counters: ServeCounters::default(),
        }),
        changed: Condvar::new(),
        pool: Pool::with_tracer(config.threads, config.tracer.clone()),
        cache: config.cache.clone(),
        tracer: config.tracer.clone(),
        want_snapshots: registry.is_some(),
        max_inflight: config.max_inflight_states,
        queue_cap: config.queue_cap,
        default_budget: config.job_budget.clone(),
        no_lazy: config.no_lazy,
        no_filters: config.no_filters,
        bus: StreamBus::new(),
        hists: HistogramRegistry::new(),
        journal,
        started: Instant::now(),
        run_id: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64),
    });
    // The shared pool and cache record their scheduler/probe latencies
    // into the same service-global registry.
    core.pool.set_histograms(core.hists.clone());
    if let Some(cache) = &core.cache {
        cache.set_histograms(core.hists.clone());
    }

    eprintln!(
        "rlcheck: serve: listening on {socket} ({} workers)",
        config.threads
    );
    // The fan-out sampler: every progress period, publish one heartbeat
    // (and any fresh trace events) per running job. It only *reads* probe
    // atomics and the per-job tracer, and [`StreamBus::publish`] is
    // drop-oldest, so this thread can never slow a job down.
    let sampler_stop = Arc::new((Mutex::new(false), Condvar::new()));
    let sampler = {
        let core = Arc::clone(&core);
        let shared = Arc::clone(&sampler_stop);
        let period = progress_period();
        std::thread::Builder::new()
            .name("rl-serve-sampler".to_owned())
            .spawn(move || {
                let (lock, cv) = &*shared;
                let mut stop = lock
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                while !*stop {
                    let (next, timeout) = cv
                        .wait_timeout(stop, period)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    stop = next;
                    if *stop || !timeout.timed_out() {
                        continue;
                    }
                    let running: Vec<(u64, Arc<JobStream>)> = {
                        let t = core.lock();
                        t.entries
                            .iter()
                            .filter(|(_, e)| e.state == JobState::Running)
                            .filter_map(|(&id, e)| e.stream.as_ref().map(|s| (id, Arc::clone(s))))
                            .collect()
                    };
                    for (id, stream) in running {
                        publish_job_tick(&core, id, &stream);
                    }
                    journal_sample(&core);
                }
            })
            .expect("spawning the sampler thread succeeds")
    };
    let beat = heartbeat();
    let ttl = result_ttl();
    let sweep_every = beat.max(ttl / 4);
    let mut last_sweep = Instant::now();
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut next_conn = 1u64;
    loop {
        if shutdown.is_cancelled() || core.draining() {
            break;
        }
        // Reap expired undelivered results (their metrics shards already
        // live on the drain list), bounding the table even when clients
        // submit and never collect.
        if last_sweep.elapsed() >= sweep_every {
            last_sweep = Instant::now();
            let mut t = core.lock();
            t.entries.retain(|_, e| {
                e.state != JobState::Done || e.done_at.is_none_or(|at| at.elapsed() < ttl)
            });
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let core = Arc::clone(&core);
                let id = next_conn;
                next_conn += 1;
                conns.push(
                    std::thread::Builder::new()
                        .name(format!("rl-serve-conn-{id}"))
                        .spawn(move || handle_conn(core, stream, id))
                        .expect("spawning a connection thread succeeds"),
                );
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                std::thread::sleep(beat / 4);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("rlcheck: serve: accept: {e}");
                break;
            }
        }
    }

    // ---- graceful drain -------------------------------------------------
    eprintln!("rlcheck: serve: draining");
    let mut drain_settled: Vec<u64> = Vec::new();
    {
        let mut t = core.lock();
        t.draining = true;
        // Queued jobs never started; settle them as cancelled.
        while let Some(id) = t.queue.pop_front() {
            let Some(e) = t.entries.get(&id) else {
                continue;
            };
            e.cancel.cancel();
            let name = e.spec.source.display_name().to_owned();
            settle_locked(
                &mut t,
                id,
                JobResult {
                    code: 3,
                    holds: None,
                    out: String::new(),
                    err: format!("rlcheck: [{name}] cancelled before start (drain)\n"),
                    snapshot: None,
                },
            );
            t.counters.cancelled += 1;
            drain_settled.push(id);
        }
    }
    for id in drain_settled {
        publish_json(&core, id, &done_json(id, 3));
    }
    core.changed.notify_all();
    // Let running jobs finish; past the grace period, cancel them and keep
    // waiting — their guards notice within one charge interval.
    let grace_ends = Instant::now() + drain_grace();
    let mut cancelled_late = false;
    {
        let mut t = core.lock();
        while t.entries.values().any(|e| e.state != JobState::Done) {
            if !cancelled_late && Instant::now() >= grace_ends {
                cancelled_late = true;
                for e in t.entries.values().filter(|e| e.state != JobState::Done) {
                    e.cancel.cancel();
                }
            }
            t = core
                .changed
                .wait_timeout(t, beat)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }
    core.changed.notify_all();
    // Stop the sampler before joining connections: every job is settled,
    // so its final heartbeats/trace tails are already in the rings and the
    // connection threads' last flushes deliver them.
    {
        let (lock, cv) = &*sampler_stop;
        *lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
    }
    let _ = sampler.join();
    for handle in conns {
        let _ = handle.join();
    }
    // One final journal sample after every job settled, so short-lived
    // daemons (and the last interval of long ones) are never lost — this
    // is what lets `rlcheck report --dir` stitch runs across restarts.
    journal_sample(&core);
    let _ = std::fs::remove_file(&socket);

    // Fold every job's metrics shard and the service counters into the
    // parent registry, in job-id (submission) order, so the flushed sinks
    // are deterministic regardless of completion interleaving. The shards
    // were captured at completion time — job records themselves may be
    // long reaped by result delivery or the TTL sweep.
    let mut t = core.lock();
    t.shards.sort_by_key(|&(id, _)| id);
    if let Some(reg) = registry {
        for (id, shard) in &t.shards {
            reg.absorb(&format!("job{id}"), shard);
        }
        let c = t.counters;
        reg.counter("serve/submitted").add(c.submitted);
        reg.counter("serve/admitted").add(c.admitted);
        reg.counter("serve/queued").add(c.queued);
        reg.counter("serve/rejected").add(c.rejected);
        reg.counter("serve/completed").add(c.completed);
        reg.counter("serve/panicked").add(c.panicked);
        reg.counter("serve/cancelled").add(c.cancelled);
        reg.counter("serve/peak_inflight_states")
            .add(c.peak_inflight);
    }
    let c = t.counters;
    eprintln!(
        "rlcheck: serve: drained: {} completed ({} panicked, {} cancelled), {} rejected",
        c.completed, c.panicked, c.cancelled, c.rejected
    );
    Ok(0)
}
