//! JSON round-trips for every serializable data structure (persistence goes
//! through the in-tree `rl-json` crate, re-exported as
//! `relative_liveness::json`).

use relative_liveness::prelude::*;
use rl_bench::alternating_bit;

#[test]
fn alphabet_roundtrip() {
    let ab = Alphabet::new(["request", "result", "reject"]).unwrap();
    let json = relative_liveness::json::to_string(&ab).unwrap();
    assert_eq!(json, r#"["request","result","reject"]"#);
    let back: Alphabet = relative_liveness::json::from_str(&json).unwrap();
    assert_eq!(ab, back);
    // Duplicates are rejected at deserialization time.
    assert!(relative_liveness::json::from_str::<Alphabet>(r#"["a","a"]"#).is_err());
}

#[test]
fn nfa_roundtrip_preserves_language() {
    let ab = Alphabet::new(["a", "b"]).unwrap();
    let a = ab.symbol("a").unwrap();
    let b = ab.symbol("b").unwrap();
    let nfa = Nfa::from_parts(
        ab,
        3,
        [0],
        [2],
        [(0, a, 0), (0, b, 1), (1, a, 2), (2, b, 2)],
    )
    .unwrap();
    let json = relative_liveness::json::to_string_pretty(&nfa).unwrap();
    let back: Nfa = relative_liveness::json::from_str(&json).unwrap();
    assert!(dfa_equivalent(&nfa.determinize(), &back.determinize()));
    assert_eq!(nfa.state_count(), back.state_count());
}

#[test]
fn nfa_rejects_corrupt_documents() {
    // Transition to a state out of range.
    let bad = r#"{"alphabet":["a"],"state_count":1,"initial":[0],
                  "accepting":[0],"transitions":[[0,0,7]]}"#;
    assert!(relative_liveness::json::from_str::<Nfa>(bad).is_err());
    // Symbol out of range.
    let bad2 = r#"{"alphabet":["a"],"state_count":1,"initial":[0],
                   "accepting":[0],"transitions":[[0,3,0]]}"#;
    assert!(relative_liveness::json::from_str::<Nfa>(bad2).is_err());
}

#[test]
fn dfa_roundtrip_and_conflict_detection() {
    let ab = Alphabet::new(["a", "b"]).unwrap();
    let dfa = server_behaviors().to_nfa().determinize();
    let json = relative_liveness::json::to_string(&dfa).unwrap();
    let back: Dfa = relative_liveness::json::from_str(&json).unwrap();
    assert!(dfa_equivalent(&dfa, &back));
    let _ = ab;
    // Conflicting edges are rejected.
    let bad = r#"{"alphabet":["a"],"state_count":2,"initial":0,
                  "accepting":[1],"transitions":[[0,0,1],[0,0,0]]}"#;
    assert!(relative_liveness::json::from_str::<Dfa>(bad).is_err());
}

#[test]
fn transition_system_roundtrip_keeps_labels() {
    let ts = server_behaviors();
    let json = relative_liveness::json::to_string(&ts).unwrap();
    let back: TransitionSystem = relative_liveness::json::from_str(&json).unwrap();
    assert_eq!(ts.state_count(), back.state_count());
    assert_eq!(ts.transition_count(), back.transition_count());
    assert_eq!(ts.initial(), back.initial());
    assert_eq!(ts.state_label(0), back.state_label(0));
    // Language preserved.
    assert!(dfa_equivalent(
        &ts.to_nfa().determinize(),
        &back.to_nfa().determinize()
    ));
}

#[test]
fn buchi_roundtrip_preserves_omega_language() {
    let behaviors = behaviors_of_ts(&alternating_bit());
    let json = relative_liveness::json::to_string(&behaviors).unwrap();
    let back: Buchi = relative_liveness::json::from_str(&json).unwrap();
    // Spot-check on sampled lassos plus structural equality.
    assert_eq!(behaviors.state_count(), back.state_count());
    assert_eq!(behaviors.transition_count(), back.transition_count());
    if let Some(w) = behaviors.accepted_upword() {
        assert!(back.accepts_upword(&w));
    }
}

#[test]
fn upword_roundtrip() {
    let ab = Alphabet::new(["a", "b"]).unwrap();
    let a = ab.symbol("a").unwrap();
    let b = ab.symbol("b").unwrap();
    let w = UpWord::new(vec![a, b], vec![b, a, a]).unwrap();
    let json = relative_liveness::json::to_string(&w).unwrap();
    let back: UpWord = relative_liveness::json::from_str(&json).unwrap();
    assert_eq!(w, back);
    // Empty period rejected.
    assert!(relative_liveness::json::from_str::<UpWord>(r#"{"prefix":[0],"period":[]}"#).is_err());
}

#[test]
fn formula_roundtrip() {
    let f = parse("[](request -> <>result) & !(a U b)").unwrap();
    let json = relative_liveness::json::to_string(&f).unwrap();
    let back: Formula = relative_liveness::json::from_str(&json).unwrap();
    assert_eq!(f, back);
}

#[test]
fn petri_net_roundtrip() {
    let net = server_net();
    let json = relative_liveness::json::to_string_pretty(&net).unwrap();
    let back: PetriNet = relative_liveness::json::from_str(&json).unwrap();
    assert_eq!(net.place_count(), back.place_count());
    assert_eq!(net.transition_count(), back.transition_count());
    assert_eq!(net.initial_marking(), back.initial_marking());
    // Same behaviors.
    let ts1 = reachability_graph(&net, 1000).unwrap();
    let ts2 = reachability_graph(&back, 1000).unwrap();
    assert!(dfa_equivalent(
        &ts1.to_nfa().determinize(),
        &ts2.to_nfa().determinize()
    ));
    // Duplicate place names rejected.
    let bad = r#"{"places":[["p",1],["p",0]],"transitions":[]}"#;
    assert!(relative_liveness::json::from_str::<PetriNet>(bad).is_err());
}

#[test]
fn counterexamples_are_exportable() {
    // The practical point of serde support: persist a verdict's evidence.
    let behaviors = behaviors_of_ts(&server_err_behaviors());
    let p = Property::formula(parse("[]<>result").unwrap());
    let verdict = is_relative_liveness(&behaviors, &p).unwrap();
    let cex = verdict.doomed_prefix.unwrap();
    let json = relative_liveness::json::to_string(&cex).unwrap();
    let back: Vec<Symbol> = relative_liveness::json::from_str(&json).unwrap();
    assert_eq!(cex, back);
}
