//! Property test: the size-budgeted, evicting operation cache is an
//! invisible optimization. For random systems and formulas, the verdict,
//! the full report text, and the diagnostics must be bit-for-bit identical
//! whether a check runs cold (no cache), against an unbounded cache, or
//! against a tiny cache that evicts on nearly every insert — and the
//! cache's resident size must never exceed its configured byte budget.

use proptest::prelude::*;
use relative_liveness::check::{report_check, CheckSpec, SystemSource};
use relative_liveness::prelude::*;

const SIGMA: [&str; 3] = ["a", "b", "tau"];
const ATOMS: &[&str] = &["a", "b", "tau"];

/// A random transition system over Σ = {a, b, tau} with ≤ 4 states, in the
/// `system` text format (the same path the CLI and the service take). The
/// fixed `s0 tau -> s0` self-loop keeps the behavior set nonempty.
fn system_text() -> impl Strategy<Value = String> {
    let n = 4usize;
    proptest::collection::vec((0..n, 0..SIGMA.len(), 0..n), 1..=12).prop_map(move |trs| {
        let mut text = String::from("system\nalphabet: a b tau\ninitial: s0\ns0 tau -> s0\n");
        for (p, a, q) in trs {
            text.push_str(&format!("s{p} {} -> s{q}\n", SIGMA[a]));
        }
        text
    })
}

/// A random PLTL formula, generated directly as concrete syntax.
fn formula_text() -> impl Strategy<Value = String> {
    let atom = || proptest::sample::select(ATOMS).prop_map(str::to_owned);
    (atom(), atom(), 0..6u8).prop_map(|(x, y, shape)| match shape {
        0 => format!("[]<>{x}"),
        1 => format!("<>[]{x}"),
        2 => format!("([]<>{x}) && ([]<>{y})"),
        3 => format!("(<>{x}) || ([]{y})"),
        4 => format!("!(<>{x})"),
        _ => format!("({x}) U ({y})"),
    })
}

/// Runs the full `check` pipeline once and returns everything observable:
/// exit code, report text, diagnostics text.
fn run_once(system: &str, formula: &str, cache: Option<&OpCache>) -> (u8, String, String) {
    let spec = CheckSpec {
        source: SystemSource::Inline {
            name: "prop".to_owned(),
            text: system.to_owned(),
        },
        formula: formula.to_owned(),
    };
    let mut guard = Guard::unlimited();
    if let Some(c) = cache {
        guard = guard.with_op_cache(c.clone());
    }
    let mut out = String::new();
    let mut err = String::new();
    let code = report_check(&spec, &guard, &mut out, &mut err);
    (code, out, err)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eviction_never_changes_a_verdict(system in system_text(), formula in formula_text()) {
        let cold = run_once(&system, &formula, None);

        // Unbounded warm cache: second run answers from the table.
        let unbounded = OpCache::with_limits(None, None);
        let warm = run_once(&system, &formula, Some(&unbounded));
        let warm_again = run_once(&system, &formula, Some(&unbounded));

        // A 512-byte budget is below almost every automaton entry, so the
        // cache is under continuous eviction pressure.
        let tiny = OpCache::with_limits(None, Some(512));
        let evicted = run_once(&system, &formula, Some(&tiny));
        let evicted_again = run_once(&system, &formula, Some(&tiny));

        prop_assert_eq!(&cold, &warm, "unbounded cache changed the outcome");
        prop_assert_eq!(&cold, &warm_again, "warm hits changed the outcome");
        prop_assert_eq!(&cold, &evicted, "evicting cache changed the outcome");
        prop_assert_eq!(&cold, &evicted_again, "post-eviction rerun drifted");

        let budget = tiny.byte_budget().expect("budget configured");
        prop_assert!(
            tiny.resident_bytes() <= budget,
            "resident {} exceeds budget {}",
            tiny.resident_bytes(),
            budget
        );
        prop_assert!(unbounded.evictions() == 0, "unbounded cache must not evict");
    }
}

/// Deterministic companion to the property: a fixed workload against a
/// small budget must actually evict (so the property above is exercising
/// the eviction path, not an always-empty cache), hold the budget at every
/// step, and still replay to identical outcomes.
#[test]
fn fixed_workload_evicts_and_replays_identically() {
    let systems = [
        "system\nalphabet: a b tau\ninitial: s0\ns0 a -> s1\ns1 b -> s0\ns1 tau -> s1\n",
        "system\nalphabet: a b tau\ninitial: s0\ns0 a -> s0\ns0 b -> s1\ns1 a -> s2\ns2 tau -> s0\n",
        "system\nalphabet: a b tau\ninitial: s0\ns0 tau -> s0\ns0 a -> s1\ns1 b -> s1\n",
    ];
    let formulas = ["[]<>a", "<>[]b", "([]<>a) && ([]<>b)", "(a) U (b)"];
    let run_all = |cache: &OpCache| -> Vec<(u8, String, String)> {
        let mut outcomes = Vec::new();
        let budget = cache.byte_budget().expect("budgeted cache");
        for system in &systems {
            for formula in &formulas {
                outcomes.push(run_once(system, formula, Some(cache)));
                assert!(
                    cache.resident_bytes() <= budget,
                    "resident {} exceeds budget {} mid-workload",
                    cache.resident_bytes(),
                    budget
                );
            }
        }
        outcomes
    };

    let first = OpCache::with_limits(None, Some(4096));
    let second = OpCache::with_limits(None, Some(4096));
    let a = run_all(&first);
    let b = run_all(&second);
    assert_eq!(a, b, "same workload, same budget: identical outcomes");
    assert_eq!(
        (first.evictions(), first.resident_bytes(), first.hits()),
        (second.evictions(), second.resident_bytes(), second.hits()),
        "cache counters replay deterministically"
    );
    assert!(
        first.evictions() > 0,
        "a 4 KiB budget must evict under this workload"
    );

    // The same workload cold (no cache) agrees with both cached runs.
    let mut i = 0;
    for system in &systems {
        for formula in &formulas {
            assert_eq!(
                run_once(system, formula, None),
                a[i],
                "cold run {i} drifted"
            );
            i += 1;
        }
    }
}
