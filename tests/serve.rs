//! End-to-end tests of `rlcheck serve`: the wire protocol, per-job panic
//! isolation, admission control, client-disconnect cancellation, graceful
//! drain, and cache byte-budget enforcement — including the deterministic
//! `RL_FAULT` fault-injection points.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rl_json::{Json, ObjBuilder};

/// A socket/scratch path that is unique per test *and* short enough for
/// `sun_path` (temp dir + a short name).
fn scratch(name: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rl-{name}-{}.{ext}", std::process::id()))
}

struct Daemon {
    child: Child,
    socket: PathBuf,
    stderr_path: PathBuf,
}

fn start_daemon(name: &str, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
    let socket = scratch(name, "sock");
    let _ = std::fs::remove_file(&socket);
    let stderr_path = scratch(name, "err");
    let stderr_file = std::fs::File::create(&stderr_path).expect("stderr capture file");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rlcheck"));
    cmd.arg("serve")
        .arg("--socket")
        .arg(&socket)
        .args(extra)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::from(stderr_file))
        // Fast heartbeats and a short drain grace keep the tests snappy.
        .env("RL_HEARTBEAT_MS", "20")
        .env("RL_DRAIN_GRACE_MS", "2000");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let child = cmd.spawn().expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !socket.exists() {
        assert!(
            Instant::now() < deadline,
            "daemon never bound {socket:?}; stderr: {}",
            std::fs::read_to_string(&stderr_path).unwrap_or_default()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    Daemon {
        child,
        socket,
        stderr_path,
    }
}

impl Daemon {
    fn stderr_text(&self) -> String {
        std::fs::read_to_string(&self.stderr_path).unwrap_or_default()
    }

    /// Waits for the process to exit (after a `shutdown` request or a
    /// signal) and returns its exit code.
    fn wait_exit(&mut self) -> i32 {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.code().unwrap_or(-1);
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not exit; stderr: {}",
                self.stderr_text()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

fn connect(d: &Daemon) -> Client {
    let stream = UnixStream::connect(&d.socket).expect("connect to daemon");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    Client {
        writer: stream,
        reader,
    }
}

impl Client {
    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("request write");
    }

    /// Reads one reply line; `None` when the server closed the connection.
    fn try_recv(&mut self) -> Option<Json> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("reply read");
        if n == 0 {
            return None;
        }
        Some(rl_json::parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}")))
    }

    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        self.try_recv()
            .expect("server closed connection mid-request")
    }

    /// Blocks (server-side) until job `id` completes; returns the reply.
    fn wait_job(&mut self, id: i64) -> Json {
        self.request(&format!("{{\"cmd\":\"wait\",\"id\":{id}}}"))
    }

    fn stats(&mut self) -> Json {
        self.request("{\"cmd\":\"stats\"}")
    }

    fn shutdown(&mut self) -> Json {
        self.request("{\"cmd\":\"shutdown\"}")
    }
}

fn submit_line(fields: &[(&str, Json)]) -> String {
    let mut b = ObjBuilder::new().field("cmd", "submit");
    for (k, v) in fields {
        b = b.field(k, v.clone());
    }
    rl_json::to_string(&b.build()).expect("render request")
}

fn s(v: &str) -> Json {
    Json::Str(v.to_owned())
}

fn i(v: i64) -> Json {
    Json::Int(v)
}

fn int_field(v: &Json, key: &str) -> i64 {
    match v.get(key) {
        Some(Json::Int(n)) => *n,
        other => panic!("field {key} not an int: {other:?} in {v:?}"),
    }
}

fn str_field(v: &Json, key: &str) -> String {
    match v.get(key) {
        Some(Json::Str(t)) => t.clone(),
        other => panic!("field {key} not a string: {other:?} in {v:?}"),
    }
}

fn bool_field(v: &Json, key: &str) -> bool {
    match v.get(key) {
        Some(Json::Bool(b)) => *b,
        other => panic!("field {key} not a bool: {other:?} in {v:?}"),
    }
}

// ---------------------------------------------------------------------------

#[test]
fn serve_runs_jobs_and_drains_cleanly() {
    let mut d = start_daemon("basic", &["--jobs", "2"], &[]);
    let mut c = connect(&d);

    // A file-backed job (paths resolve in the daemon's working directory).
    let r = c.request(&submit_line(&[
        ("path", s("examples/systems/server.pn")),
        ("formula", s("[]<>result")),
    ]));
    assert!(bool_field(&r, "ok"), "{r:?}");
    let id1 = int_field(&r, "id");
    assert_eq!(id1, 1, "job ids are assigned in submission order");

    // An inline job: the daemon needs no shared filesystem with clients.
    let r = c.request(&submit_line(&[
        ("system", s("system\nalphabet: go\ninitial: a\na go -> a\n")),
        ("name", s("wire-loop")),
        ("formula", s("[]<>go")),
    ]));
    assert!(bool_field(&r, "ok"), "{r:?}");
    let id2 = int_field(&r, "id");
    assert_eq!(id2, 2);

    let done1 = c.wait_job(id1);
    assert_eq!(str_field(&done1, "status"), "done");
    assert_eq!(int_field(&done1, "code"), 0, "{done1:?}");
    assert!(bool_field(&done1, "holds"));
    let output = str_field(&done1, "output");
    assert!(output.contains("rel-live   []<>result: HOLDS"), "{output}");

    let done2 = c.wait_job(id2);
    assert_eq!(int_field(&done2, "code"), 0, "{done2:?}");
    assert!(str_field(&done2, "output").contains("=== wire-loop []<>go"));

    // Delivery consumes the record: `wait` is a one-shot handoff, and
    // reaping delivered jobs is what keeps the resident table bounded.
    let gone = c.request("{\"cmd\":\"status\",\"id\":1}");
    assert!(!bool_field(&gone, "ok"), "{gone:?}");

    // Unknown ids and malformed requests are errors, not disconnects.
    let bad = c.request("{\"cmd\":\"status\",\"id\":99}");
    assert!(!bool_field(&bad, "ok"));
    let bad = c.request("this is not json");
    assert!(!bool_field(&bad, "ok"));

    let st = c.stats();
    assert_eq!(int_field(&st, "submitted"), 2);
    assert_eq!(int_field(&st, "completed"), 2);
    assert_eq!(int_field(&st, "inflight_states"), 0);
    // Uptime, per-verb request counters, and the telemetry-plane gauges
    // ride along in the same reply.
    assert!(int_field(&st, "uptime_ms") >= 0);
    let req = st.field("requests").expect("requests object");
    assert_eq!(int_field(req, "submit"), 2);
    assert_eq!(int_field(req, "wait"), 2);
    assert!(int_field(req, "status") >= 2);
    assert!(int_field(req, "stats") >= 1, "the stats call counts itself");
    assert_eq!(int_field(&st, "subscribers"), 0);
    assert_eq!(int_field(&st, "events_dropped"), 0);

    let ack = c.shutdown();
    assert_eq!(str_field(&ack, "status"), "draining");
    assert_eq!(d.wait_exit(), 0, "clean drain exits 0");
    let err = d.stderr_text();
    assert!(err.contains("drained"), "stderr: {err}");
}

/// Span rows (path → states) for jobs `job<id>/...` of a metrics file.
fn job_spans(metrics: &str) -> Vec<(String, i64)> {
    let mut spans = Vec::new();
    for line in metrics.lines() {
        let v = rl_json::parse(line).unwrap_or_else(|e| panic!("bad metrics line {line:?}: {e}"));
        if matches!(v.get("event"), Some(Json::Str(e)) if e == "span") {
            let path = str_field(&v, "path");
            if path.starts_with("job1/") || path.starts_with("job3/") {
                spans.push((path, int_field(&v, "states")));
            }
        }
    }
    spans
}

#[test]
fn panicking_job_is_contained_and_siblings_stay_deterministic() {
    // Two identical daemons; in the second, job 2 is armed to panic on its
    // worker (value-matched, so pool scheduling cannot change the victim).
    let m_clean = scratch("panic-clean", "jsonl");
    let m_fault = scratch("panic-fault", "jsonl");
    let submit = |c: &mut Client| {
        for (path, formula) in [
            ("examples/systems/server.pn", "[]<>result"),
            ("examples/systems/server_err.pn", "[]<>result"),
            ("examples/systems/server.pn", "[]<>result"),
        ] {
            let r = c.request(&submit_line(&[("path", s(path)), ("formula", s(formula))]));
            assert!(bool_field(&r, "ok"), "{r:?}");
        }
    };

    // `--no-op-cache`: jobs 1 and 3 are the same check, and span charge
    // attribution under a shared cache depends on which of them computes
    // an op first (the other hits the cache) — racy by design, see
    // DESIGN.md §11. The isolation claim under test needs per-job spans
    // that don't depend on pool scheduling.
    let mut clean = start_daemon(
        "panic-a",
        &[
            "--jobs",
            "2",
            "--no-op-cache",
            "--metrics",
            m_clean.to_str().unwrap(),
        ],
        &[],
    );
    let mut c = connect(&clean);
    submit(&mut c);
    let codes: Vec<i64> = (1..=3)
        .map(|id| int_field(&c.wait_job(id), "code"))
        .collect();
    assert_eq!(codes, vec![0, 1, 0], "clean verdicts");
    c.shutdown();
    assert_eq!(clean.wait_exit(), 0);

    let mut faulted = start_daemon(
        "panic-b",
        &[
            "--jobs",
            "2",
            "--no-op-cache",
            "--metrics",
            m_fault.to_str().unwrap(),
        ],
        &[("RL_FAULT", "job-panic:2")],
    );
    let mut c = connect(&faulted);
    submit(&mut c);
    let r1 = c.wait_job(1);
    let r2 = c.wait_job(2);
    let r3 = c.wait_job(3);
    // The poisoned job reports exit 101 with the panic message …
    assert_eq!(int_field(&r2, "code"), 101, "{r2:?}");
    assert!(
        str_field(&r2, "diagnostics").contains("internal panic"),
        "{r2:?}"
    );
    // … while its concurrent siblings finish with their normal verdicts.
    assert_eq!(int_field(&r1, "code"), 0, "{r1:?}");
    assert_eq!(int_field(&r3, "code"), 0, "{r3:?}");
    let st = c.stats();
    assert_eq!(int_field(&st, "panicked"), 1);
    assert_eq!(int_field(&st, "completed"), 3);
    c.shutdown();
    assert_eq!(
        faulted.wait_exit(),
        0,
        "a panicking job never kills the daemon"
    );

    // The surviving jobs' deterministic counters are bit-for-bit unchanged
    // by the sibling panic: same span paths, same state counts.
    let clean_spans = job_spans(&std::fs::read_to_string(&m_clean).expect("clean metrics"));
    let fault_spans = job_spans(&std::fs::read_to_string(&m_fault).expect("fault metrics"));
    assert!(!clean_spans.is_empty(), "metrics record job spans");
    assert_eq!(clean_spans, fault_spans);
}

#[test]
fn client_disconnect_cancels_its_job() {
    let d = start_daemon("disco", &["--jobs", "1"], &[]);

    // Client A submits a check that would run for minutes …
    let mut a = connect(&d);
    let r = a.request(&submit_line(&[
        ("path", s("examples/systems/needle24.ts")),
        ("no_lazy", Json::Bool(true)),
        ("formula", s("[]<>a")),
        ("timeout_ms", i(120_000)),
    ]));
    assert!(bool_field(&r, "ok"), "{r:?}");
    let id = int_field(&r, "id");
    assert_eq!(str_field(&r, "status"), "running");
    // … and vanishes without cancelling.
    drop(a);

    // The disconnect propagates to the job's cancel token within one
    // heartbeat; the budget frees and the job settles as cancelled (3).
    let mut b = connect(&d);
    let done = b.wait_job(id);
    assert_eq!(str_field(&done, "status"), "done");
    assert_eq!(int_field(&done, "code"), 3, "{done:?}");
    let st = b.stats();
    assert_eq!(int_field(&st, "cancelled"), 1);
    assert_eq!(int_field(&st, "inflight_states"), 0, "budget freed");
}

#[test]
fn admission_queues_over_ceiling_then_admits() {
    let d = start_daemon(
        "queue",
        &[
            "--jobs",
            "1",
            "--max-inflight-states",
            "300000",
            "--queue-cap",
            "8",
        ],
        &[],
    );
    let mut c = connect(&d);

    // Job 1 occupies 200k of the 300k ceiling until its budget trips.
    let r1 = c.request(&submit_line(&[
        ("path", s("examples/systems/needle24.ts")),
        ("no_lazy", Json::Bool(true)),
        ("formula", s("[]<>a")),
        ("max_states", i(200_000)),
        ("timeout_ms", i(2_000)),
    ]));
    assert_eq!(str_field(&r1, "status"), "running", "{r1:?}");

    // Job 2 would overflow the ceiling: it queues instead of OOMing.
    let r2 = c.request(&submit_line(&[
        ("path", s("examples/systems/clock.ts")),
        ("formula", s("[]<>tick")),
        ("max_states", i(200_000)),
    ]));
    assert!(bool_field(&r2, "ok"), "{r2:?}");
    assert_eq!(str_field(&r2, "status"), "queued", "{r2:?}");

    // Once job 1 releases its weight, job 2 is admitted and completes.
    let done1 = c.wait_job(int_field(&r1, "id"));
    assert_eq!(int_field(&done1, "code"), 3, "needle trips its budget");
    let done2 = c.wait_job(int_field(&r2, "id"));
    let code2 = int_field(&done2, "code");
    assert!(
        code2 == 0 || code2 == 1,
        "clock verdict, not a budget trip: {done2:?}"
    );

    let st = c.stats();
    assert_eq!(int_field(&st, "queued"), 1);
    assert_eq!(int_field(&st, "admitted"), 2);
    assert_eq!(int_field(&st, "rejected"), 0);
}

#[test]
fn completion_admits_queued_jobs_only_up_to_capacity() {
    let d = start_daemon(
        "fifo-cap",
        &[
            "--jobs",
            "2",
            "--max-inflight-states",
            "300000",
            "--queue-cap",
            "8",
        ],
        &[],
    );
    let mut c = connect(&d);

    // Job 1 briefly holds 200k of the 300k ceiling.
    let r1 = c.request(&submit_line(&[
        ("path", s("examples/systems/needle24.ts")),
        ("no_lazy", Json::Bool(true)),
        ("formula", s("[]<>a")),
        ("max_states", i(200_000)),
        ("timeout_ms", i(1_000)),
    ]));
    assert_eq!(str_field(&r1, "status"), "running", "{r1:?}");

    // Jobs 2 and 3 declare 200k each and queue behind it. When job 1
    // releases its weight, only ONE of them fits: admitting every queued
    // job that individually fits would put 400k — 133% of the ceiling —
    // in flight at once.
    let mut ids = Vec::new();
    for _ in 0..2 {
        let r = c.request(&submit_line(&[
            ("path", s("examples/systems/needle24.ts")),
            ("no_lazy", Json::Bool(true)),
            ("formula", s("[]<>a")),
            ("max_states", i(200_000)),
            ("timeout_ms", i(120_000)),
        ]));
        assert_eq!(str_field(&r, "status"), "queued", "{r:?}");
        ids.push(int_field(&r, "id"));
    }

    c.wait_job(int_field(&r1, "id"));
    // Settle the stragglers one at a time; each completion admits the
    // next queued job, never more than capacity allows.
    for id in ids {
        let r = c.request(&format!("{{\"cmd\":\"cancel\",\"id\":{id}}}"));
        assert!(bool_field(&r, "ok"), "{r:?}");
        let done = c.wait_job(id);
        assert_eq!(int_field(&done, "code"), 3, "{done:?}");
    }

    let st = c.stats();
    assert_eq!(int_field(&st, "admitted"), 3);
    assert_eq!(int_field(&st, "queued"), 2);
    // The high-water mark proves the ceiling was never overcommitted:
    // the three 200k jobs ran strictly one at a time.
    assert_eq!(int_field(&st, "peak_inflight_states"), 200_000, "{st:?}");
}

#[test]
fn admission_rejects_oversize_jobs_and_full_queues() {
    let d = start_daemon(
        "reject",
        &[
            "--jobs",
            "1",
            "--max-inflight-states",
            "300000",
            "--queue-cap",
            "0",
        ],
        &[],
    );
    let mut c = connect(&d);

    // A declared budget larger than the whole ceiling can never run.
    let r = c.request(&submit_line(&[
        ("path", s("examples/systems/clock.ts")),
        ("formula", s("[]<>tick")),
        ("max_states", i(500_000)),
    ]));
    assert!(!bool_field(&r, "ok"));
    assert_eq!(str_field(&r, "status"), "rejected");
    assert!(str_field(&r, "error").contains("ceiling"), "{r:?}");

    // Occupy most of the ceiling …
    let r1 = c.request(&submit_line(&[
        ("path", s("examples/systems/needle24.ts")),
        ("no_lazy", Json::Bool(true)),
        ("formula", s("[]<>a")),
        ("max_states", i(250_000)),
        ("timeout_ms", i(2_000)),
    ]));
    assert_eq!(str_field(&r1, "status"), "running", "{r1:?}");
    // … and with a zero-length queue the next submit is bounced outright.
    let r2 = c.request(&submit_line(&[
        ("path", s("examples/systems/clock.ts")),
        ("formula", s("[]<>tick")),
        ("max_states", i(100_000)),
    ]));
    assert!(!bool_field(&r2, "ok"));
    assert_eq!(str_field(&r2, "status"), "rejected");
    assert!(str_field(&r2, "error").contains("queue full"), "{r2:?}");

    let st = c.stats();
    assert_eq!(int_field(&st, "rejected"), 2);
}

#[test]
fn sigterm_drains_and_flushes_parseable_sinks() {
    let metrics = scratch("sigterm", "jsonl");
    let mut d = start_daemon(
        "sigterm",
        &["--jobs", "2", "--metrics", metrics.to_str().unwrap()],
        &[],
    );
    let mut c = connect(&d);
    for (path, formula) in [
        ("examples/systems/server.pn", "[]<>result"),
        ("examples/systems/server_err.pn", "[]<>result"),
    ] {
        let r = c.request(&submit_line(&[("path", s(path)), ("formula", s(formula))]));
        assert!(bool_field(&r, "ok"), "{r:?}");
    }
    c.wait_job(1);
    c.wait_job(2);

    // SIGTERM → graceful drain → sinks flushed → exit 0.
    let pid = d.child.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success());
    assert_eq!(d.wait_exit(), 0, "stderr: {}", d.stderr_text());
    assert!(d.stderr_text().contains("drained"), "{}", d.stderr_text());

    // Every line of the metrics file parses; meta first, totals last, with
    // per-job spans and the service counters in between.
    let text = std::fs::read_to_string(&metrics).expect("metrics flushed");
    let lines: Vec<Json> = text
        .lines()
        .map(|l| rl_json::parse(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
        .collect();
    assert!(lines.len() >= 3, "metrics has content: {text}");
    assert_eq!(str_field(&lines[0], "event"), "meta");
    let totals = lines.last().expect("nonempty");
    assert_eq!(str_field(totals, "event"), "totals");
    let counters = totals.field("counters").expect("counters object");
    assert_eq!(int_field(counters, "serve/submitted"), 2);
    assert_eq!(int_field(counters, "serve/completed"), 2);
    assert!(lines
        .iter()
        .any(|v| matches!(v.get("path"), Some(Json::Str(p)) if p.starts_with("job1"))));

    // The offline renderer accepts the drained file.
    let report = Command::new(env!("CARGO_BIN_EXE_rlcheck"))
        .args(["report", metrics.to_str().unwrap()])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("report runs");
    assert_eq!(report.status.code(), Some(0));
}

#[test]
fn soak_cache_never_exceeds_byte_budget() {
    const BUDGET: i64 = 16_384;
    let d = start_daemon("soak", &["--jobs", "2", "--cache-bytes", "16384"], &[]);
    let mut c = connect(&d);
    let cases = [
        ("examples/systems/server.pn", "[]<>result", 0i64),
        ("examples/systems/server_err.pn", "[]<>result", 1),
        ("examples/systems/clock.ts", "[]<>tick", 0),
    ];
    let expected_code = |id: i64| cases[(id as usize - 1) % cases.len()].2;

    // 100 jobs in waves of 10; the shared evicting cache must never hold
    // more than its byte budget, and verdicts must stay stable throughout.
    let mut next = 1i64;
    for _wave in 0..10 {
        let first = next;
        for _ in 0..10 {
            let (path, formula, _) = cases[(next as usize - 1) % cases.len()];
            let r = c.request(&submit_line(&[("path", s(path)), ("formula", s(formula))]));
            assert!(bool_field(&r, "ok"), "{r:?}");
            assert_eq!(int_field(&r, "id"), next);
            next += 1;
        }
        for id in first..next {
            let done = c.wait_job(id);
            assert_eq!(
                int_field(&done, "code"),
                expected_code(id),
                "job {id} verdict drifted under eviction: {done:?}"
            );
        }
        let st = c.stats();
        let resident = int_field(&st, "cache_resident_bytes");
        assert!(
            resident <= BUDGET,
            "cache exceeded its budget mid-soak: {resident} > {BUDGET}"
        );
    }
    let st = c.stats();
    assert_eq!(int_field(&st, "completed"), 100);
    assert!(
        int_field(&st, "cache_evictions") > 0,
        "a 16 KiB budget must evict during a 100-job soak: {st:?}"
    );
}

/// Polls `status` until the predicate holds or the deadline passes.
fn poll_status(c: &mut Client, id: i64, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = c.request(&format!("{{\"cmd\":\"status\",\"id\":{id}}}"));
        if pred(&r) {
            return r;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never became {what}: {r:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn undelivered_results_are_reaped_after_ttl() {
    let d = start_daemon("ttl", &["--jobs", "1"], &[("RL_RESULT_TTL_MS", "50")]);
    let mut c = connect(&d);
    let r = c.request(&submit_line(&[
        ("path", s("examples/systems/server.pn")),
        ("formula", s("[]<>result")),
    ]));
    let id = int_field(&r, "id");

    // `status` is a non-consuming poll: the record survives it …
    poll_status(&mut c, id, "done", |r| {
        bool_field(r, "ok") && r.get("code").is_some()
    });
    // … but an uncollected result outlives its TTL by at most one sweep,
    // so a daemon whose clients never `wait` cannot leak job records.
    poll_status(&mut c, id, "reaped", |r| !bool_field(r, "ok"));
    let st = c.stats();
    assert_eq!(int_field(&st, "completed"), 1, "counters survive the reap");
}

#[test]
fn disconnect_reaps_the_clients_undelivered_results() {
    let d = start_daemon("reap", &["--jobs", "1"], &[]);
    let mut a = connect(&d);
    let r = a.request(&submit_line(&[
        ("path", s("examples/systems/server.pn")),
        ("formula", s("[]<>result")),
    ]));
    let id = int_field(&r, "id");
    // The job finishes while A is connected, but A never waits …
    poll_status(&mut a, id, "done", |r| {
        bool_field(r, "ok") && r.get("code").is_some()
    });
    drop(a);

    // … so the result can never be delivered to it; the disconnect reaps
    // the record (within one heartbeat) instead of waiting out the TTL.
    let mut b = connect(&d);
    poll_status(&mut b, id, "reaped", |r| !bool_field(r, "ok"));
    let st = b.stats();
    assert_eq!(int_field(&st, "completed"), 1);
    assert_eq!(int_field(&st, "cancelled"), 0, "the job finished normally");
}

#[test]
fn second_server_on_a_live_socket_is_refused() {
    let mut d = start_daemon("busy", &[], &[]);

    // A second server on the same socket must refuse to start — silently
    // unlinking a live socket would orphan the first server (running but
    // unreachable) — and must leave the incumbent untouched.
    let out = Command::new(env!("CARGO_BIN_EXE_rlcheck"))
        .args(["serve", "--socket", d.socket.to_str().unwrap()])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("second server runs");
    assert!(!out.status.success(), "second bind must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("already listening"), "stderr: {err}");

    let mut c = connect(&d);
    let st = c.stats();
    assert!(bool_field(&st, "ok"), "incumbent still answers: {st:?}");
    c.shutdown();
    assert_eq!(d.wait_exit(), 0);
}

/// Polls `stats` until the predicate holds or the deadline passes.
fn poll_stats(c: &mut Client, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let st = c.stats();
        if pred(&st) {
            return st;
        }
        assert!(
            Instant::now() < deadline,
            "stats never became {what}: {st:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn subscribe_streams_heartbeats_and_traces_before_done() {
    let d = start_daemon("sub", &["--jobs", "2"], &[("RL_PROGRESS_MS", "5")]);

    // One connection subscribes to every job before any is submitted.
    let mut sub = connect(&d);
    let ack = sub.request("{\"cmd\":\"subscribe\",\"id\":\"*\"}");
    assert!(bool_field(&ack, "ok"), "{ack:?}");
    assert_eq!(int_field(&ack, "ring_capacity"), 1024, "default ring size");

    // Another submits and collects the verdict through the normal verbs.
    let mut c = connect(&d);
    let r = c.request(&submit_line(&[
        ("path", s("examples/systems/server.pn")),
        ("formula", s("[]<>result")),
    ]));
    assert!(bool_field(&r, "ok"), "{r:?}");
    let id = int_field(&r, "id");
    let done = c.wait_job(id);
    assert_eq!(int_field(&done, "code"), 0, "{done:?}");

    let st = c.stats();
    assert_eq!(int_field(&st, "subscribers"), 1, "{st:?}");

    // The stream must carry at least one heartbeat and one trace event for
    // the job strictly before its `done` record — guaranteed even for runs
    // shorter than the sampling period, because completion publishes a
    // final heartbeat and the trace tail under the same lock as `done`.
    let (mut beats, mut traces) = (0u64, 0u64);
    loop {
        let v = sub.try_recv().expect("stream ended before the done record");
        match str_field(&v, "event").as_str() {
            "heartbeat" if int_field(&v, "job") == id => beats += 1,
            "trace" if int_field(&v, "job") == id => traces += 1,
            "done" if int_field(&v, "job") == id => break,
            _ => {}
        }
    }
    assert!(beats >= 1, "no heartbeat before done");
    assert!(traces >= 1, "no trace event before done");

    // `unsubscribe` detaches cleanly and the connection stays usable.
    let off = sub.request("{\"cmd\":\"unsubscribe\"}");
    assert!(bool_field(&off, "ok"), "{off:?}");
    assert!(bool_field(&off, "unsubscribed"), "{off:?}");
    let st = sub.stats();
    assert_eq!(int_field(&st, "subscribers"), 0, "{st:?}");
    let req = st.field("requests").expect("requests object");
    assert_eq!(int_field(req, "subscribe"), 1);
    assert_eq!(int_field(req, "unsubscribe"), 1);
}

#[test]
fn slow_subscriber_drops_events_but_never_stalls_the_job_or_drain() {
    // A tiny ring and a fast sampler guarantee overflow: far more events
    // are published per flush window than the ring can hold.
    let mut d = start_daemon(
        "slowsub",
        &["--jobs", "1"],
        &[("RL_PROGRESS_MS", "2"), ("RL_SUBSCRIBER_RING", "4")],
    );
    let mut sub = connect(&d);
    let ack = sub.request("{\"cmd\":\"subscribe\",\"id\":\"*\"}");
    assert!(bool_field(&ack, "ok"), "{ack:?}");
    assert_eq!(int_field(&ack, "ring_capacity"), 4);
    // The subscriber now goes silent: it never reads another byte.

    let mut c = connect(&d);
    let started = Instant::now();
    let r = c.request(&submit_line(&[
        ("path", s("examples/systems/needle24.ts")),
        ("no_lazy", Json::Bool(true)),
        ("formula", s("[]<>a")),
        ("timeout_ms", i(2_000)),
    ]));
    assert!(bool_field(&r, "ok"), "{r:?}");
    let done = c.wait_job(int_field(&r, "id"));
    // The job settles on its own 2s budget: publishing to a wedged
    // subscriber is drop-oldest into the ring, never a blocking write from
    // the worker, so the stall adds no meaningful delay.
    assert_eq!(int_field(&done, "code"), 3, "{done:?}");
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "slow subscriber delayed the job: {:?}",
        started.elapsed()
    );

    let st = c.stats();
    assert!(
        int_field(&st, "events_dropped") > 0,
        "a 4-slot ring must overflow under a 2ms sampler: {st:?}"
    );

    // Drain completes within the grace window even though the subscriber
    // never read its stream.
    let ack = c.shutdown();
    assert_eq!(str_field(&ack, "status"), "draining");
    assert_eq!(d.wait_exit(), 0, "stderr: {}", d.stderr_text());
    assert!(d.stderr_text().contains("drained"), "{}", d.stderr_text());
    drop(sub);
}

#[test]
fn active_subscriber_leaves_deterministic_counters_unchanged() {
    let m_quiet = scratch("sub-quiet", "jsonl");
    let m_watched = scratch("sub-watched", "jsonl");
    let submit = |c: &mut Client| {
        for path in [
            "examples/systems/server.pn",
            "examples/systems/server_err.pn",
            "examples/systems/server.pn",
        ] {
            let r = c.request(&submit_line(&[
                ("path", s(path)),
                ("formula", s("[]<>result")),
            ]));
            assert!(bool_field(&r, "ok"), "{r:?}");
        }
    };

    // Daemon A: no subscriber. (--no-op-cache for scheduling-independent
    // span attribution, as in the panic-isolation test.)
    let mut quiet = start_daemon(
        "sub-quiet",
        &[
            "--jobs",
            "2",
            "--no-op-cache",
            "--metrics",
            m_quiet.to_str().unwrap(),
        ],
        &[],
    );
    let mut c = connect(&quiet);
    submit(&mut c);
    let codes: Vec<i64> = (1..=3)
        .map(|id| int_field(&c.wait_job(id), "code"))
        .collect();
    assert_eq!(codes, vec![0, 1, 0]);
    c.shutdown();
    assert_eq!(quiet.wait_exit(), 0);

    // Daemon B: identical jobs under an aggressive sampler and a live
    // subscriber reading the whole stream.
    let mut watched = start_daemon(
        "sub-watched",
        &[
            "--jobs",
            "2",
            "--no-op-cache",
            "--metrics",
            m_watched.to_str().unwrap(),
        ],
        &[("RL_PROGRESS_MS", "2")],
    );
    let sub = connect(&watched);
    let mut sub_writer = sub.writer.try_clone().expect("clone");
    let mut sub_reader = sub.reader;
    writeln!(sub_writer, "{{\"cmd\":\"subscribe\",\"id\":\"*\"}}").expect("subscribe");
    let reader = std::thread::spawn(move || {
        // Reads the whole stream until the daemon drains (EOF), counting
        // heartbeats; errors end the stream like EOF.
        let mut beats = 0u64;
        let mut line = String::new();
        loop {
            line.clear();
            match sub_reader.read_line(&mut line) {
                Ok(0) | Err(_) => return beats,
                Ok(_) => {
                    if line.contains("\"event\":\"heartbeat\"") {
                        beats += 1;
                    }
                }
            }
        }
    });
    let mut c = connect(&watched);
    submit(&mut c);
    let codes: Vec<i64> = (1..=3)
        .map(|id| int_field(&c.wait_job(id), "code"))
        .collect();
    assert_eq!(codes, vec![0, 1, 0], "verdicts unchanged under observation");
    c.shutdown();
    assert_eq!(watched.wait_exit(), 0);
    let beats = reader.join().expect("reader thread");
    assert!(beats >= 1, "the subscriber observed the jobs");

    // The observed daemon's deterministic per-job counters are bit-for-bit
    // those of the unobserved one: same span paths, same state counts.
    let quiet_spans = job_spans(&std::fs::read_to_string(&m_quiet).expect("quiet metrics"));
    let watched_spans = job_spans(&std::fs::read_to_string(&m_watched).expect("watched metrics"));
    assert!(!quiet_spans.is_empty(), "metrics record job spans");
    assert_eq!(quiet_spans, watched_spans);
}

#[test]
fn injected_subscriber_drop_severs_the_stream_but_not_the_job() {
    // The fault point arms the first non-empty subscriber flush: the
    // stream is severed mid-job, exactly like a crashed `top`.
    let d = start_daemon(
        "dropsub",
        &["--jobs", "1"],
        &[("RL_FAULT", "serve-drop-sub:1"), ("RL_PROGRESS_MS", "5")],
    );
    let mut sub = connect(&d);
    let ack = sub.request("{\"cmd\":\"subscribe\",\"id\":\"*\"}");
    assert!(bool_field(&ack, "ok"), "{ack:?}");

    let mut c = connect(&d);
    let r = c.request(&submit_line(&[
        ("path", s("examples/systems/server.pn")),
        ("formula", s("[]<>result")),
    ]));
    let done = c.wait_job(int_field(&r, "id"));
    assert_eq!(int_field(&done, "code"), 0, "job unaffected: {done:?}");

    // The severed subscriber sees EOF, and the daemon reaps its
    // subscription within a heartbeat.
    assert!(sub.try_recv().is_none(), "stream should be severed");
    let st = poll_stats(&mut c, "subscriber-free", |st| {
        int_field(st, "subscribers") == 0
    });
    assert_eq!(int_field(&st, "completed"), 1, "{st:?}");
}

#[test]
fn injected_connection_drop_cancels_like_a_real_disconnect() {
    // The server-side fault point severs the connection after the second
    // reply; the submitted job must be cancelled exactly as if the client
    // had crashed.
    let d = start_daemon(
        "dropconn",
        &["--jobs", "1"],
        &[("RL_FAULT", "serve-drop-conn:2")],
    );
    let mut a = connect(&d);
    let r = a.request(&submit_line(&[
        ("path", s("examples/systems/needle24.ts")),
        ("no_lazy", Json::Bool(true)),
        ("formula", s("[]<>a")),
        ("timeout_ms", i(120_000)),
    ]));
    let id = int_field(&r, "id");
    let _ = a.request("{\"cmd\":\"stats\"}"); // second reply, then the drop
    assert!(
        a.try_recv().is_none(),
        "connection should be severed after the armed reply"
    );

    let mut b = connect(&d);
    let done = b.wait_job(id);
    assert_eq!(int_field(&done, "code"), 3, "{done:?}");
    let st = b.stats();
    assert_eq!(int_field(&st, "cancelled"), 1);
}

// ---------------------------------------------------------------------------
// The percentile telemetry plane: the `metrics` verb, the persistent
// journal, and the SLO regression gate.

/// Runs the `rlcheck` binary as a one-shot subcommand (report/slo) from the
/// repository root; returns (stdout, stderr, exit code).
fn run_rlcheck(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_rlcheck"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("rlcheck runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn metrics_verb_emits_prometheus_exposition_and_jsonl() {
    let mut d = start_daemon("metrics", &["--jobs", "2"], &[]);
    let mut c = connect(&d);
    let r = c.request(&submit_line(&[
        ("path", s("examples/systems/server.pn")),
        ("formula", s("[]<>result")),
    ]));
    assert!(bool_field(&r, "ok"), "{r:?}");
    c.wait_job(int_field(&r, "id"));

    let m = c.request("{\"cmd\":\"metrics\"}");
    assert!(bool_field(&m, "ok"), "{m:?}");
    assert_eq!(str_field(&m, "format"), "prometheus");
    let body = str_field(&m, "body");
    assert!(body.contains("rl_serve_submitted_total 1"), "{body}");
    // The acceptance families: queue wait, job wall time, filter-stage
    // latency, op cache probe (plus admission latency) — each a well-formed
    // histogram with cumulative buckets closed by +Inf.
    for family in [
        "rl_serve_queue_wait_us",
        "rl_serve_job_wall_us",
        "rl_serve_admission_us",
        "rl_filter_parikh_us",
        "rl_opcache_probe_us",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family} histogram")),
            "missing family {family} in:\n{body}"
        );
        assert!(
            body.contains(&format!("{family}_bucket{{le=\"+Inf\"}}")),
            "{family} lacks the +Inf bucket:\n{body}"
        );
        assert!(body.contains(&format!("{family}_count")), "{body}");
        assert!(body.contains(&format!("{family}_sum")), "{body}");
    }

    // The JSONL variant: one parseable `hist` event per family.
    let j = c.request("{\"cmd\":\"metrics\",\"format\":\"jsonl\"}");
    assert!(bool_field(&j, "ok"), "{j:?}");
    let body = str_field(&j, "body");
    let mut families = 0;
    for line in body.lines() {
        let v = rl_json::parse(line).unwrap_or_else(|e| panic!("bad hist line {line:?}: {e}"));
        assert_eq!(str_field(&v, "event"), "hist");
        assert!(int_field(&v, "count") >= 1, "{line}");
        families += 1;
    }
    assert!(
        families >= 4,
        "expected >= 4 families, got {families}:\n{body}"
    );

    // Unknown formats are an error reply, not a disconnect.
    let bad = c.request("{\"cmd\":\"metrics\",\"format\":\"xml\"}");
    assert!(!bool_field(&bad, "ok"), "{bad:?}");

    // The verb counts itself in the stats reply.
    let st = c.stats();
    let req = st.field("requests").expect("requests object");
    assert_eq!(int_field(req, "metrics"), 3);

    c.shutdown();
    assert_eq!(d.wait_exit(), 0);
}

#[test]
fn metrics_journal_survives_restart_and_gates_slo() {
    let dir = scratch("journal", "d");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("journal dir");
    let dir_s = dir.to_str().expect("utf8 path");

    // Two daemon lifetimes over one journal directory: each run appends its
    // own rotated segment and flushes a final sample at drain.
    for round in 0..2 {
        let mut d = start_daemon(
            &format!("journal{round}"),
            &["--metrics-dir", dir_s],
            &[("RL_PROGRESS_MS", "40")],
        );
        let mut c = connect(&d);
        let r = c.request(&submit_line(&[
            ("path", s("examples/systems/server.pn")),
            ("formula", s("[]<>result")),
        ]));
        assert!(bool_field(&r, "ok"), "{r:?}");
        c.wait_job(int_field(&r, "id"));
        c.shutdown();
        assert_eq!(d.wait_exit(), 0, "stderr: {}", d.stderr_text());
    }

    // `report --dir` stitches both runs into one time series.
    let (out, err, code) = run_rlcheck(&["report", "--dir", dir_s]);
    assert_eq!(code, 0, "report --dir failed: {err}");
    assert!(out.contains("2 runs"), "{out}");
    assert!(out.contains("p50"), "{out}");
    assert!(out.contains("serve/job_wall_us"), "{out}");
    assert!(out.contains("time series: serve/queue_wait_us"), "{out}");

    // The committed baseline passes against a healthy journal…
    let (out, err, code) = run_rlcheck(&["slo", "SLO_BASELINE.json", "--dir", dir_s]);
    assert_eq!(code, 0, "slo gate failed: {err}");
    assert!(out.contains("slo: ok"), "{out}");
    // …and an injected regression (0µs ceiling on job wall time, zero
    // tolerance) exits 1 with the violating family named.
    let tight = scratch("slo-tight", "json");
    std::fs::write(
        &tight,
        "{\"schema\":\"rl-slo/v1\",\"tolerance_pct\":0,\
         \"families\":{\"serve/job_wall_us\":{\"p99\":0}}}",
    )
    .expect("tight baseline");
    let (_, err, code) = run_rlcheck(&["slo", tight.to_str().expect("utf8"), "--dir", dir_s]);
    assert_eq!(code, 1, "tight gate must fail: {err}");
    assert!(err.contains("serve/job_wall_us"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&tight);
}

#[test]
fn misconfigured_knobs_warn_once_on_daemon_stderr() {
    // Garbage in both env knobs: the daemon must say so (once each) and
    // keep serving with the defaults rather than silently misbehaving.
    let mut d = start_daemon(
        "badknobs",
        &[],
        &[("RL_PROGRESS_MS", "1s"), ("RL_SUBSCRIBER_RING", "big")],
    );
    // A subscriber forces the ring-capacity knob to be read (it is parsed
    // per subscription, deduped by the warn-once policy).
    let mut sub = connect(&d);
    let ack = sub.request("{\"cmd\":\"subscribe\",\"id\":\"*\"}");
    assert!(bool_field(&ack, "ok"), "{ack:?}");
    let mut c = connect(&d);
    let r = c.request(&submit_line(&[
        ("path", s("examples/systems/server.pn")),
        ("formula", s("[]<>result")),
    ]));
    assert!(bool_field(&r, "ok"), "{r:?}");
    c.wait_job(int_field(&r, "id"));
    c.shutdown();
    assert_eq!(d.wait_exit(), 0);
    let err = d.stderr_text();
    assert_eq!(
        err.matches("warning: RL_PROGRESS_MS=\"1s\"").count(),
        1,
        "stderr: {err}"
    );
    assert_eq!(
        err.matches("warning: RL_SUBSCRIBER_RING=\"big\"").count(),
        1,
        "stderr: {err}"
    );
}
