//! End-to-end tests of the `rlcheck` command-line tool against the sample
//! system files shipped in `examples/systems/`.

use std::path::Path;
use std::process::{Command, Output};

fn rlcheck(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rlcheck"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("rlcheck binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn sample_files_exist() {
    for f in [
        "examples/systems/server.pn",
        "examples/systems/server_err.pn",
        "examples/systems/clock.ts",
    ] {
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR")).join(f).exists(),
            "missing sample {f}"
        );
    }
}

#[test]
fn check_reports_relative_liveness() {
    let out = rlcheck(&["check", "examples/systems/server.pn", "[]<>result"]);
    assert_eq!(out.status.code(), Some(0), "rel-live => exit 0");
    let text = stdout(&out);
    assert!(text.contains("classical  []<>result: fails"));
    assert!(text.contains("rel-live   []<>result: HOLDS"));
    assert!(text.contains("counterexample"));
}

#[test]
fn check_reports_doomed_prefix() {
    let out = rlcheck(&["check", "examples/systems/server_err.pn", "[]<>result"]);
    assert_eq!(out.status.code(), Some(1), "not rel-live => exit 1");
    let text = stdout(&out);
    assert!(text.contains("rel-live   []<>result: fails"));
    assert!(text.contains("doomed prefix: lock"));
}

#[test]
fn abstract_pipeline_flags_non_simplicity() {
    let out = rlcheck(&[
        "abstract",
        "examples/systems/server_err.pn",
        "[]<>result",
        "--keep",
        "request,result,reject",
    ]);
    assert_eq!(out.status.code(), Some(3), "inconclusive => exit 3");
    let text = stdout(&out);
    assert!(text.contains("h simple: fails"));
    assert!(text.contains("violation: lock"));
    assert!(text.contains("INCONCLUSIVE"));
}

#[test]
fn abstract_pipeline_transfers_on_correct_server() {
    let out = rlcheck(&[
        "abstract",
        "examples/systems/server.pn",
        "[]<>result",
        "--keep",
        "request,result,reject",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("h simple: HOLDS"));
    assert!(text.contains("Thm 8.2"));
}

#[test]
fn simplicity_subcommand() {
    let out = rlcheck(&[
        "simplicity",
        "examples/systems/server.pn",
        "--keep",
        "request,result,reject",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("simple: HOLDS"));
}

#[test]
fn fair_subcommand_runs_scheduler() {
    let out = rlcheck(&[
        "fair",
        "examples/systems/clock.ts",
        "[]<>chime",
        "--steps",
        "50",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("synthesized implementation"));
    assert!(text.contains("chime"));
}

#[test]
fn dot_subcommand_outputs_graphviz() {
    let out = rlcheck(&["dot", "examples/systems/clock.ts"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("tick"));
}

#[test]
fn bad_usage_exits_2() {
    let out = rlcheck(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out2 = rlcheck(&["check", "no/such/file.pn", "[]<>x"]);
    assert_eq!(out2.status.code(), Some(2));
    let out3 = rlcheck(&["check", "examples/systems/clock.ts", "[[[["]);
    assert_eq!(out3.status.code(), Some(2));
}

#[test]
fn abp_sample_file_checks() {
    let out = rlcheck(&["check", "examples/systems/abp.ts", "[]<>deliver"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("classical  []<>deliver: fails"));
    assert!(text.contains("rel-live   []<>deliver: HOLDS"));
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn max_states_budget_exhaustion_exits_3() {
    // needle24.ts determinizes to 2^24 subset states; a 10k-state budget
    // must trip almost immediately instead of hanging.
    let out = rlcheck(&[
        "check",
        "examples/systems/needle24.ts",
        "[]<>a",
        "--max-states",
        "10000",
        "--timeout",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(3), "budget exhaustion => exit 3");
    let err = stderr(&out);
    assert!(err.contains("BudgetExceeded"), "stderr: {err}");
    assert!(err.contains("states"), "stderr: {err}");
    assert!(err.contains("limit 10000"), "stderr: {err}");
}

#[test]
fn zero_timeout_exits_3_with_wall_clock_report() {
    let out = rlcheck(&[
        "check",
        "examples/systems/needle24.ts",
        "[]<>a",
        "--timeout",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(3), "deadline exhaustion => exit 3");
    let err = stderr(&out);
    assert!(err.contains("BudgetExceeded"), "stderr: {err}");
    assert!(err.contains("wall-clock"), "stderr: {err}");
}

#[test]
fn budget_flags_do_not_disturb_small_inputs() {
    // The same flags on an easy input leave the verdict (and exit 0) alone.
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--max-states",
        "100000",
        "--timeout",
        "60",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("rel-live   []<>deliver: HOLDS"));
}

#[test]
fn stats_flag_prints_phase_table_on_stderr() {
    // --no-filters: this test pins the lazy pipeline's instrumentation,
    // which the pre-filter ladder would legitimately bypass on abp.
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--stats",
        "--no-filters",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "--stats must not change the verdict"
    );
    // The verdict stays on stdout, the profile goes to stderr.
    assert!(stdout(&out).contains("rel-live   []<>deliver: HOLDS"));
    let err = stderr(&out);
    let header = err
        .lines()
        .find(|l| l.starts_with("phase"))
        .unwrap_or_else(|| panic!("no header in stderr: {err}"));
    for col in ["states", "transitions", "cache-hits", "elapsed"] {
        assert!(header.contains(col), "header missing {col}: {header}");
    }
    for phase in [
        "check",
        "behaviors",
        "classical",
        "relative_liveness",
        "relative_safety",
        "lazy_inclusion",
        "buchi_intersection",
    ] {
        assert!(err.contains(phase), "no {phase} row in stderr: {err}");
    }
    // The lazy-pipeline counters are headline rows of the profile.
    for counter in ["lazy/expanded", "lazy/subsumed"] {
        assert!(err.contains(counter), "no {counter} row in stderr: {err}");
    }
    assert!(err.contains("total"), "no totals footer: {err}");
    // --no-lazy swaps the fused search for the materializing pipeline.
    let eager = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--stats",
        "--no-lazy",
        "--no-filters",
    ]);
    assert_eq!(eager.status.code(), Some(0));
    assert_eq!(
        stdout(&eager),
        stdout(&out),
        "--no-lazy must not change verdicts"
    );
    let eerr = stderr(&eager);
    assert!(eerr.contains("determinize"), "no determinize row: {eerr}");
    assert!(
        !eerr.contains("lazy_inclusion"),
        "eager run ran lazily: {eerr}"
    );
}

#[test]
fn filter_ladder_short_circuits_and_preserves_the_verdict() {
    // With filters on (the default) the abp inclusion is settled by the
    // simulation fast-accept before the exact core runs at all.
    let filtered = rlcheck(&["check", "examples/systems/abp.ts", "[]<>deliver", "--stats"]);
    assert_eq!(filtered.status.code(), Some(0));
    let err = stderr(&filtered);
    assert!(err.contains("prefilter"), "no prefilter span row: {err}");
    for counter in ["filter/hit", "filter/sim/hit"] {
        assert!(err.contains(counter), "no {counter} row in stderr: {err}");
    }
    assert!(
        err.contains("filter hit-rate"),
        "no hit-rate headline: {err}"
    );
    assert!(
        !err.contains("lazy_inclusion"),
        "ladder hit must bypass the exact search: {err}"
    );
    // The verdict (and everything else on stdout) is byte-identical with
    // the ladder disabled.
    let unfiltered = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--no-filters",
    ]);
    assert_eq!(unfiltered.status.code(), Some(0));
    let plain = rlcheck(&["check", "examples/systems/abp.ts", "[]<>deliver"]);
    assert_eq!(
        stdout(&plain),
        stdout(&unfiltered),
        "--no-filters must not change the report"
    );
}

#[test]
fn metrics_flag_writes_parseable_jsonl_covering_the_pipeline() {
    let dir = std::env::temp_dir().join("rlcheck-cli-metrics");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("check.jsonl");
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--no-filters",
        "--metrics",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&path).expect("--metrics wrote the file");
    fn str_field(v: &rl_json::Json, key: &str) -> String {
        match v.get(key) {
            Some(rl_json::Json::Str(s)) => s.clone(),
            other => panic!("field {key} is not a string: {other:?}"),
        }
    }
    let mut events = Vec::new();
    let mut paths = Vec::new();
    for line in text.lines() {
        let v = rl_json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let event = str_field(&v, "event");
        if event == "span" {
            paths.push(str_field(&v, "path"));
        }
        events.push(event);
    }
    assert_eq!(events.first().map(String::as_str), Some("meta"));
    assert_eq!(events.last().map(String::as_str), Some("totals"));
    let meta = rl_json::parse(text.lines().next().expect("meta line")).expect("meta parses");
    // A registry-backed run records percentile histograms (op cache probe
    // latency at minimum), which upgrades the schema to v3.
    assert_eq!(str_field(&meta, "schema"), "rl-obs/v3");
    // Every phase of the (lazy, default) check pipeline shows up as a
    // span path.
    for needle in [
        "check",
        "check/behaviors/limit",
        "check/classical/negation",
        "check/relative_liveness/lazy_inclusion",
        "check/relative_safety/buchi_intersection",
    ] {
        assert!(
            paths.iter().any(|p| p == needle),
            "missing span {needle}; got {paths:?}"
        );
    }
    // The lazy counters ride along in the totals record.
    let totals = rl_json::parse(text.lines().last().expect("totals line")).expect("totals parses");
    match totals.get("counters") {
        Some(rl_json::Json::Obj(counters)) => {
            assert!(
                counters.iter().any(|(k, _)| k == "lazy/expanded"),
                "no lazy/expanded in totals: {counters:?}"
            );
        }
        other => panic!("totals has no counters object: {other:?}"),
    }
}

#[test]
fn budget_report_names_the_exhausted_phase() {
    // Eager pipeline: needle24 exhausts a 5k-state cap inside the subset
    // construction of the behaviors limit.
    let out = rlcheck(&[
        "check",
        "examples/systems/needle24.ts",
        "[]<>a",
        "--max-states",
        "5000",
        "--no-lazy",
        "--stats",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let err = stderr(&out);
    assert!(
        err.contains("in phase check/behaviors/limit/determinize"),
        "budget report must name the phase: {err}"
    );
    // The profile is still flushed on the exit-3 path.
    assert!(
        err.contains("total"),
        "no totals footer after exhaustion: {err}"
    );
    // Lazy pipeline: the same input sails past that cap (the subset
    // construction never runs); a much tighter one trips inside the fused
    // inclusion search, and the report names *that* phase.
    let lazy = rlcheck(&[
        "check",
        "examples/systems/needle24.ts",
        "[]<>a",
        "--max-states",
        "250",
        "--stats",
        "--no-filters",
    ]);
    assert_eq!(lazy.status.code(), Some(3));
    let lerr = stderr(&lazy);
    assert!(
        lerr.contains("in phase check/relative_liveness/lazy_inclusion"),
        "budget report must name the lazy phase: {lerr}"
    );
}

#[test]
fn metrics_flag_without_value_exits_2() {
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--metrics",
    ]);
    assert_eq!(out.status.code(), Some(2), "missing value => usage error");
}

#[test]
fn malformed_budget_flags_exit_2() {
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--timeout",
    ]);
    assert_eq!(out.status.code(), Some(2), "missing value => usage error");
    let out2 = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--max-states",
        "many",
    ]);
    assert_eq!(
        out2.status.code(),
        Some(2),
        "non-numeric value => usage error"
    );
}

#[test]
fn jobs_flag_output_is_identical_to_sequential() {
    // The whole point of the parallel kernels: verdicts, reports, and the
    // deterministic diagnostics are bit-for-bit independent of --jobs.
    let base = rlcheck(&["check", "examples/systems/abp.ts", "[]<>deliver"]);
    for jobs in ["1", "2", "4"] {
        let out = rlcheck(&[
            "check",
            "examples/systems/abp.ts",
            "[]<>deliver",
            "--jobs",
            jobs,
        ]);
        assert_eq!(out.status.code(), base.status.code(), "--jobs {jobs}");
        assert_eq!(stdout(&out), stdout(&base), "--jobs {jobs}");
    }
}

#[test]
fn jobs_budget_trip_is_identical_to_sequential() {
    // Eagerly, needle24 blows a 20k-state cap inside determinize; the trip
    // point and every deterministic diagnostic must not depend on the
    // thread count.
    let run = |jobs: &str| {
        rlcheck(&[
            "check",
            "examples/systems/needle24.ts",
            "[]<>deliver",
            "--max-states",
            "20000",
            "--no-lazy",
            "--jobs",
            jobs,
        ])
    };
    let (j1, j4) = (run("1"), run("4"));
    assert_eq!(j1.status.code(), Some(3));
    assert_eq!(j4.status.code(), Some(3));
    let strip_elapsed = |text: String| -> String {
        // Drop the trailing wall-clock fragment ("... in 6.19ms"), the only
        // nondeterministic part of the diagnostics.
        text.lines()
            .map(|l| match l.rfind(") in ") {
                Some(a) => l[..=a].to_owned(),
                None => l.to_owned(),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_elapsed(stderr(&j1)),
        strip_elapsed(stderr(&j4)),
        "same trip point, same partial diagnostics"
    );
    // The lazy fused search honors the same discipline: its frontier fans
    // out across the pool, but charges merge sequentially, so a trip inside
    // lazy_inclusion lands on the same state at any thread count.
    let lazy = |jobs: &str| {
        rlcheck(&[
            "check",
            "examples/systems/needle24.ts",
            "[]<>a",
            "--max-states",
            "250",
            "--jobs",
            jobs,
        ])
    };
    let (l1, l4) = (lazy("1"), lazy("4"));
    assert_eq!(l1.status.code(), Some(3));
    assert_eq!(l4.status.code(), Some(3));
    assert_eq!(
        strip_elapsed(stderr(&l1)),
        strip_elapsed(stderr(&l4)),
        "same lazy trip point at any thread count"
    );
    assert_eq!(stdout(&l1), stdout(&l4));
}

#[test]
fn jobs_zero_autodetects_and_rl_threads_is_overridden_by_flag() {
    // --jobs 0 resolves to the core count; the run must still succeed and
    // agree with sequential output.
    let auto = rlcheck(&[
        "check",
        "examples/systems/clock.ts",
        "[]<>tick",
        "--jobs",
        "0",
    ]);
    let base = rlcheck(&["check", "examples/systems/clock.ts", "[]<>tick"]);
    assert_eq!(auto.status.code(), base.status.code());
    assert_eq!(stdout(&auto), stdout(&base));
    // RL_THREADS picks the count when no flag is given; an explicit flag
    // wins. Either way the report is unchanged.
    let env = Command::new(env!("CARGO_BIN_EXE_rlcheck"))
        .args([
            "check",
            "examples/systems/clock.ts",
            "[]<>tick",
            "--jobs",
            "2",
        ])
        .env("RL_THREADS", "broken-value-must-be-ignored")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("rlcheck binary runs");
    assert_eq!(env.status.code(), base.status.code());
    assert_eq!(stdout(&env), stdout(&base));
}

#[test]
fn jobs_choice_is_recorded_in_metrics_header() {
    let dir = std::env::temp_dir().join("rlcheck-jobs-meta");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics.jsonl");
    let out = rlcheck(&[
        "check",
        "examples/systems/clock.ts",
        "[]<>tick",
        "--jobs",
        "4",
        "--metrics",
        path.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let meta = rl_json::parse(text.lines().next().expect("header line")).expect("valid json");
    assert_eq!(
        meta.get("jobs"),
        Some(&rl_json::Json::Int(4)),
        "worker count lands in the JSONL header"
    );
}

#[test]
fn batch_runs_files_with_shared_formula() {
    let out = rlcheck(&[
        "batch",
        "examples/systems/clock.ts",
        "examples/systems/no-such-system.ts",
        "--formula",
        "[]<>tick",
        "--jobs",
        "4",
    ]);
    let text = stdout(&out);
    // Buffered per-job output prints in submission order.
    let clock = text
        .find("=== examples/systems/clock.ts")
        .expect("clock header");
    let missing = text
        .find("=== examples/systems/no-such-system.ts")
        .expect("missing header");
    assert!(clock < missing, "submission order preserved:\n{text}");
    assert!(text.contains("batch: 1/2 checks relatively live"));
    // clock holds (0), the missing file is an error (2); worst wins.
    assert_eq!(out.status.code(), Some(2), "worst exit code wins");
}

#[test]
fn batch_manifest_mode_and_exit_aggregation() {
    let dir = std::env::temp_dir().join("rlcheck-batch-manifest");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let manifest = dir.join("checks.txt");
    std::fs::write(
        &manifest,
        "# two real checks and one failing one\n\
         examples/systems/clock.ts []<>tick\n\
         \n\
         examples/systems/server_err.pn []<>result\n",
    )
    .expect("manifest written");
    let out = rlcheck(&[
        "batch",
        "--manifest",
        manifest.to_str().expect("utf-8 path"),
        "--jobs",
        "2",
    ]);
    let text = stdout(&out);
    assert!(text.contains("=== examples/systems/clock.ts []<>tick"));
    assert!(text.contains("rel-live   []<>result: fails"));
    assert!(text.contains("batch: 1/2 checks relatively live"));
    assert_eq!(out.status.code(), Some(1), "clock holds, server_err fails");
}

#[test]
fn batch_output_is_identical_across_jobs() {
    let dir = std::env::temp_dir().join("rlcheck-batch-determinism");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let manifest = dir.join("checks.txt");
    std::fs::write(
        &manifest,
        "examples/systems/clock.ts []<>tick\n\
         examples/systems/abp.ts []<>deliver\n\
         examples/systems/server.pn []<>result\n",
    )
    .expect("manifest written");
    let run = |jobs: &str| {
        rlcheck(&[
            "batch",
            "--manifest",
            manifest.to_str().expect("utf-8 path"),
            "--jobs",
            jobs,
        ])
    };
    let (j1, j4) = (run("1"), run("4"));
    assert_eq!(j1.status.code(), j4.status.code());
    assert_eq!(
        stdout(&j1),
        stdout(&j4),
        "batch output independent of --jobs"
    );
}

#[test]
fn batch_timeout_stops_all_jobs_with_exit_3() {
    // One zero deadline governs the whole batch: every nontrivial job trips
    // (exit 3 aggregates) and, with --stats, diagnostics name the phase.
    let out = rlcheck(&[
        "batch",
        "examples/systems/needle24.ts",
        "examples/systems/needle24.ts",
        "--formula",
        "[]<>deliver",
        "--jobs",
        "4",
        "--timeout",
        "0",
        "--stats",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let err = stderr(&out);
    assert!(
        err.matches("resource budget exhausted").count() >= 2,
        "every worker observes the shared deadline:\n{err}"
    );
    assert!(err.contains("in phase check/"), "phase-named diagnostics");
}

#[test]
fn batch_without_checks_exits_2() {
    let out = rlcheck(&["batch", "--jobs", "2"]);
    assert_eq!(out.status.code(), Some(2));
    let out2 = rlcheck(&["batch", "examples/systems/clock.ts"]);
    assert_eq!(
        out2.status.code(),
        Some(2),
        "positional files need --formula"
    );
}

/// Parses a `--trace-out` file and returns its `traceEvents` array.
fn trace_events(path: &Path) -> Vec<rl_json::Json> {
    let text = std::fs::read_to_string(path).expect("--trace-out wrote the file");
    let json = rl_json::parse(&text).expect("trace file is valid JSON");
    match json.get("traceEvents") {
        Some(rl_json::Json::Arr(events)) => events.clone(),
        other => panic!("no traceEvents array: {other:?}"),
    }
}

fn int_field(v: &rl_json::Json, key: &str) -> i64 {
    match v.get(key) {
        Some(rl_json::Json::Int(n)) => *n,
        other => panic!("field {key} is not an int: {other:?}"),
    }
}

fn str_field_of(v: &rl_json::Json, key: &str) -> String {
    match v.get(key) {
        Some(rl_json::Json::Str(s)) => s.clone(),
        other => panic!("field {key} is not a string: {other:?}"),
    }
}

#[test]
fn trace_out_records_balanced_worker_tracks_and_pool_instants() {
    let dir = std::env::temp_dir().join("rlcheck-trace-out");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.json");
    // needle24 under a 20k-state cap runs long enough for the parallel
    // kernels to fan real tasks out to the pool before the budget trips
    // (eagerly — the lazy pipeline finishes it in milliseconds).
    let out = rlcheck(&[
        "check",
        "examples/systems/needle24.ts",
        "[]<>a",
        "--no-lazy",
        "--jobs",
        "4",
        "--max-states",
        "20000",
        "--trace-out",
        path.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "budget trips; sinks still flush"
    );
    let events = trace_events(&path);
    let mut tids: Vec<i64> = events.iter().map(|e| int_field(e, "tid")).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut worker_tracks_with_tasks = 0;
    for tid in &tids {
        let (mut begins, mut ends) = (0usize, 0usize);
        for e in events.iter().filter(|e| int_field(e, "tid") == *tid) {
            match str_field_of(e, "ph").as_str() {
                "B" => begins += 1,
                "E" => ends += 1,
                _ => {}
            }
        }
        assert_eq!(begins, ends, "track {tid}: B/E events must balance");
        if *tid > 0 && begins > 0 {
            worker_tracks_with_tasks += 1;
        }
    }
    assert!(
        worker_tracks_with_tasks >= 2,
        "expected >=2 worker tracks with task spans, got {worker_tracks_with_tasks}"
    );
    let names: Vec<String> = events
        .iter()
        .filter(|e| str_field_of(e, "ph") == "I")
        .map(|e| str_field_of(e, "name"))
        .collect();
    assert!(
        names.iter().any(|n| n == "spawn"),
        "pool spawn instants recorded: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "park" || n == "steal"),
        "pool park/steal instants recorded: {names:?}"
    );
    // Every track carries a Chrome thread_name metadata record.
    let meta_names: Vec<String> = events
        .iter()
        .filter(|e| str_field_of(e, "ph") == "M")
        .map(|e| match e.get("args") {
            Some(args) => str_field_of(args, "name"),
            None => panic!("metadata without args"),
        })
        .collect();
    assert!(meta_names.iter().any(|n| n == "main"), "{meta_names:?}");
    assert!(meta_names.iter().any(|n| n == "worker-1"), "{meta_names:?}");
}

#[test]
fn flame_out_writes_folded_stacks() {
    let dir = std::env::temp_dir().join("rlcheck-flame-out");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("flame.folded");
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--flame-out",
        path.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&path).expect("--flame-out wrote the file");
    for line in text.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("`stack weight` lines");
        assert!(!stack.is_empty(), "empty stack in {line:?}");
        weight
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("non-numeric weight in {line:?}"));
    }
    assert!(
        text.lines().any(|l| l.starts_with("check;")),
        "nested phases fold with semicolons:\n{text}"
    );
}

#[test]
fn report_reproduces_stats_table_byte_for_byte() {
    let dir = std::env::temp_dir().join("rlcheck-report-roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics.jsonl");
    let live = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--stats",
        "--metrics",
        path.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(live.status.code(), Some(0));
    let report = rlcheck(&["report", path.to_str().expect("utf-8 path")]);
    assert_eq!(report.status.code(), Some(0));
    // On a clean run the live stderr is exactly the phase table, and the
    // report renders the identical table (same snapshot, microsecond
    // precision end to end) on stdout.
    assert_eq!(
        stdout(&report),
        stderr(&live),
        "offline report must reproduce --stats byte-for-byte"
    );
}

#[test]
fn report_renders_event_digest_for_v2_files() {
    let dir = std::env::temp_dir().join("rlcheck-report-v2");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("metrics.jsonl");
    let trace = dir.join("trace.json");
    let live = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--jobs",
        "2",
        "--metrics",
        metrics.to_str().expect("utf-8 path"),
        "--trace-out",
        trace.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(live.status.code(), Some(0));
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(
        text.starts_with("{\"event\":\"meta\",\"schema\":\"rl-obs/v3\""),
        "tracing plus histograms upgrade the JSONL schema: {}",
        text.lines().next().unwrap_or_default()
    );
    let report = rlcheck(&["report", metrics.to_str().expect("utf-8 path")]);
    assert_eq!(report.status.code(), Some(0));
    let err = stderr(&report);
    assert!(err.contains("trace:"), "event digest on stderr: {err}");
    assert!(err.contains("main"), "per-track rows: {err}");
}

#[test]
fn report_rejects_missing_or_malformed_input() {
    let out = rlcheck(&["report"]);
    assert_eq!(out.status.code(), Some(2), "missing path => usage error");
    let dir = std::env::temp_dir().join("rlcheck-report-bad");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("not-metrics.jsonl");
    std::fs::write(&path, "this is not JSONL\n").expect("file written");
    let out2 = rlcheck(&["report", path.to_str().expect("utf-8 path")]);
    assert_eq!(out2.status.code(), Some(2), "malformed file => input error");
}

#[test]
fn stats_footer_surfaces_pool_and_cache_counters() {
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--jobs",
        "2",
        "--stats",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let err = stderr(&out);
    for counter in [
        "pool/spawns",
        "pool/steals",
        "pool/parks",
        "pool/unparks",
        "opcache/hits",
        "opcache/misses",
        "opcache/adoptions",
    ] {
        assert!(err.contains(counter), "missing {counter} in footer:\n{err}");
    }
    // Sequential runs have no pool, so its counters stay out of the table.
    let seq = rlcheck(&["check", "examples/systems/abp.ts", "[]<>deliver", "--stats"]);
    let seq_err = stderr(&seq);
    assert!(
        !seq_err.contains("pool/spawns"),
        "no pool counters without a pool:\n{seq_err}"
    );
    assert!(seq_err.contains("opcache/hits"), "{seq_err}");
}

#[test]
fn batch_absorbed_metrics_are_deterministic_across_jobs() {
    let dir = std::env::temp_dir().join("rlcheck-batch-metrics-determinism");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let manifest = dir.join("checks.txt");
    std::fs::write(
        &manifest,
        "examples/systems/clock.ts []<>tick\n\
         examples/systems/abp.ts []<>deliver\n\
         examples/systems/server.pn []<>result\n",
    )
    .expect("manifest written");
    // With the shared op cache disabled every job rebuilds its own
    // machines, so the absorbed span metrics are schedule-independent.
    // (With the cache on, which job pays for a shared construction is a
    // race — the *verdicts* stay deterministic but the per-job charge
    // attribution does not; that is why this test passes --no-op-cache.)
    let run = |jobs: &str, path: &Path| {
        rlcheck(&[
            "batch",
            "--manifest",
            manifest.to_str().expect("utf-8 path"),
            "--no-op-cache",
            "--jobs",
            jobs,
            "--metrics",
            path.to_str().expect("utf-8 path"),
        ])
    };
    let p1 = dir.join("jobs1.jsonl");
    let p4 = dir.join("jobs4.jsonl");
    let (j1, j4) = (run("1", &p1), run("4", &p4));
    assert_eq!(j1.status.code(), Some(0));
    assert_eq!(j4.status.code(), Some(0));
    // Project each file onto its deterministic content: span identity
    // (absorbed path, name, depth, renumbered seq) and the four metric
    // columns, plus the metric fields of the totals line. Wall-clock
    // fields and the schedule-dependent counters footer are excluded.
    let deterministic_view = |path: &Path| -> Vec<String> {
        let text = std::fs::read_to_string(path).expect("metrics written");
        let mut rows = Vec::new();
        for line in text.lines() {
            let v = rl_json::parse(line).expect("valid JSONL");
            match str_field_of(&v, "event").as_str() {
                "span" => rows.push(format!(
                    "span {} {} {} {} | {} {} {} {}",
                    str_field_of(&v, "path"),
                    str_field_of(&v, "name"),
                    int_field(&v, "depth"),
                    int_field(&v, "seq"),
                    int_field(&v, "states"),
                    int_field(&v, "transitions"),
                    int_field(&v, "cache_hits"),
                    int_field(&v, "guard_charges"),
                )),
                "totals" => rows.push(format!(
                    "totals {} {} {} {}",
                    int_field(&v, "states"),
                    int_field(&v, "transitions"),
                    int_field(&v, "cache_hits"),
                    int_field(&v, "guard_charges"),
                )),
                _ => {}
            }
        }
        rows
    };
    let (v1, v4) = (deterministic_view(&p1), deterministic_view(&p4));
    assert!(
        v1.iter().any(|r| r.contains("job0/check")),
        "absorbed spans are re-rooted under job<i>/: {v1:?}"
    );
    assert!(v1.iter().any(|r| r.contains("job2/check")), "{v1:?}");
    assert_eq!(v1, v4, "absorbed batch metrics must not depend on --jobs");
}

#[test]
fn progress_flag_emits_heartbeats() {
    let out = Command::new(env!("CARGO_BIN_EXE_rlcheck"))
        .args([
            "check",
            "examples/systems/needle24.ts",
            "[]<>a",
            "--no-lazy",
            "--timeout",
            "1",
            "--progress",
        ])
        .env("RL_PROGRESS_MS", "25")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("rlcheck binary runs");
    assert_eq!(out.status.code(), Some(3), "deadline still governs the run");
    let err = stderr(&out);
    let beats: Vec<&str> = err
        .lines()
        .filter(|l| l.starts_with("rlcheck: [progress]"))
        .collect();
    assert!(!beats.is_empty(), "no heartbeats in stderr:\n{err}");
    let beat = beats[beats.len() - 1];
    for fragment in ["elapsed", "states", "frontier", "time "] {
        assert!(
            beat.contains(fragment),
            "heartbeat missing {fragment}: {beat}"
        );
    }
}

#[test]
fn panic_mid_check_still_flushes_parseable_sinks() {
    let dir = std::env::temp_dir().join("rlcheck-panic-flush");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("metrics.jsonl");
    let trace = dir.join("trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_rlcheck"))
        .args([
            "check",
            "examples/systems/abp.ts",
            "[]<>deliver",
            "--metrics",
            metrics.to_str().expect("utf-8 path"),
            "--trace-out",
            trace.to_str().expect("utf-8 path"),
        ])
        .env("RL_TEST_PANIC", "1")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("rlcheck binary runs");
    assert_eq!(out.status.code(), Some(101), "injected panic => exit 101");
    assert!(stderr(&out).contains("internal panic"), "panic is reported");
    // The run died between phases, so the file records a *partial*
    // profile — but every line must still parse, and the spans that
    // completed before the panic must be present.
    let text = std::fs::read_to_string(&metrics).expect("metrics flushed on exit 101");
    let mut events = Vec::new();
    let mut paths = Vec::new();
    for line in text.lines() {
        let v = rl_json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        let event = str_field_of(&v, "event");
        if event == "span" {
            paths.push(str_field_of(&v, "path"));
        }
        events.push(event);
    }
    assert_eq!(events.first().map(String::as_str), Some("meta"));
    assert!(
        paths.iter().any(|p| p == "check/behaviors"),
        "pre-panic spans survive: {paths:?}"
    );
    assert!(
        !paths.iter().any(|p| p.starts_with("check/classical")),
        "post-panic phases never ran: {paths:?}"
    );
    // Unwinding closed the open spans, so the root span is recorded too.
    assert!(paths.iter().any(|p| p == "check"), "{paths:?}");
    // The trace sink flushes on the same path and stays valid JSON.
    let events = trace_events(&trace);
    assert!(!events.is_empty(), "trace events flushed on exit 101");
}

#[test]
#[cfg(unix)]
fn sigint_oneshot_exits_3_and_flushes_partial_metrics() {
    let dir = std::env::temp_dir().join("rlcheck-sigint");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("interrupted.jsonl");
    // A check that would run for minutes: needle24, eagerly, with a huge
    // budget (the lazy default would finish before the signal lands).
    let child = Command::new(env!("CARGO_BIN_EXE_rlcheck"))
        .args([
            "check",
            "examples/systems/needle24.ts",
            "[]<>a",
            "--no-lazy",
            "--timeout",
            "600",
            "--metrics",
            metrics.to_str().expect("utf-8 path"),
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("rlcheck spawns");
    // Let it get properly inside the subset construction, then Ctrl-C it.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let out = child.wait_with_output().expect("rlcheck exits");
    // The signal cancels the guard: budget exit, not a hard kill.
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains("interrupted by signal; partial diagnostics follow"),
        "{err}"
    );
    // The observability sinks still flushed a well-formed partial profile.
    let text = std::fs::read_to_string(&metrics).expect("metrics flushed after SIGINT");
    let mut events = Vec::new();
    for line in text.lines() {
        let v = rl_json::parse(line).expect("valid JSONL after SIGINT");
        events.push(str_field_of(&v, "event"));
    }
    assert_eq!(events.first().map(String::as_str), Some("meta"));
    assert_eq!(events.last().map(String::as_str), Some("totals"));
}

#[test]
fn cache_bytes_bounds_the_oneshot_cache_without_changing_verdicts() {
    let dir = std::env::temp_dir().join("rlcheck-cache-bytes");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("bounded.jsonl");
    let baseline = rlcheck(&["check", "examples/systems/abp.ts", "[]<>deliver"]);
    assert_eq!(baseline.status.code(), Some(0));
    let bounded = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--cache-bytes",
        "2048",
        "--metrics",
        metrics.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(bounded.status.code(), Some(0));
    assert_eq!(
        stdout(&baseline),
        stdout(&bounded),
        "a byte-budgeted cache must not change the report"
    );
    // The totals counters expose the cache's residency and eviction work,
    // and the resident figure respects the configured budget.
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    let totals = rl_json::parse(text.lines().last().expect("nonempty")).expect("totals parses");
    assert_eq!(str_field_of(&totals, "event"), "totals");
    let counters = totals.get("counters").expect("counters object");
    let resident = int_field(counters, "opcache/resident_bytes");
    let evictions = int_field(counters, "opcache/evictions");
    assert!(
        resident <= 2048,
        "resident {resident} exceeds the 2048-byte budget"
    );
    assert!(evictions >= 0, "eviction counter is reported");
    // The --stats footer carries the same two counters.
    let stats = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--cache-bytes",
        "2048",
        "--stats",
    ]);
    let footer = stderr(&stats);
    assert!(footer.contains("opcache/resident_bytes"), "{footer}");
    assert!(footer.contains("opcache/evictions"), "{footer}");
}

#[test]
fn serve_without_a_socket_is_a_usage_error() {
    let out = rlcheck(&["serve"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("serve needs --socket"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn progress_flushes_a_final_heartbeat_even_on_short_runs() {
    // The default sampling period (1s) is far longer than this check, so
    // every line below comes from the completion flush — without it the
    // run would end silent.
    let out = rlcheck(&[
        "check",
        "examples/systems/server.pn",
        "[]<>result",
        "--progress",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let err = stderr(&out);
    let beats: Vec<&str> = err
        .lines()
        .filter(|l| l.starts_with("rlcheck: [progress]"))
        .collect();
    assert!(
        !beats.is_empty(),
        "a run shorter than the period must still flush one heartbeat:\n{err}"
    );
    let beat = beats[beats.len() - 1];
    for fragment in ["elapsed", "states", "frontier"] {
        assert!(
            beat.contains(fragment),
            "final heartbeat missing {fragment}: {beat}"
        );
    }
}

#[test]
fn report_counts_unknown_event_kinds_instead_of_failing() {
    let dir = std::env::temp_dir().join("rlcheck-report-unknown");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let clean = dir.join("clean.jsonl");
    let live = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--metrics",
        clean.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(live.status.code(), Some(0));

    // Splice two lines of a future event kind into the middle of the file,
    // as a newer writer (or a mixed capture) would.
    let text = std::fs::read_to_string(&clean).expect("metrics written");
    let mut lines: Vec<&str> = text.lines().collect();
    lines.insert(1, "{\"event\":\"frob\",\"x\":1}");
    lines.insert(2, "{\"event\":\"frob\",\"x\":2}");
    let spliced = dir.join("spliced.jsonl");
    std::fs::write(&spliced, lines.join("\n") + "\n").expect("spliced written");

    let base = rlcheck(&["report", clean.to_str().expect("utf-8 path")]);
    let report = rlcheck(&["report", spliced.to_str().expect("utf-8 path")]);
    assert_eq!(report.status.code(), Some(0), "unknown kinds are not fatal");
    assert_eq!(
        stdout(&report),
        stdout(&base),
        "unknown events must not perturb the rendered table"
    );
    let err = stderr(&report);
    assert!(
        err.contains("unknown event kind") && err.contains("frob (2)"),
        "the skip is tallied on stderr: {err}"
    );
}

#[test]
fn report_renders_captured_subscribe_streams() {
    let dir = std::env::temp_dir().join("rlcheck-report-stream");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let capture = dir.join("capture.jsonl");
    // A headerless subscribe capture, as written by `rlcheck top 2> file`
    // or a raw socket client.
    std::fs::write(
        &capture,
        concat!(
            "{\"event\":\"heartbeat\",\"job\":1,\"elapsed_us\":2000000,",
            "\"states\":100,\"transitions\":10,\"frontier\":5}\n",
            "{\"event\":\"trace\",\"ph\":\"B\",\"track\":0,\"cat\":\"span\",",
            "\"name\":\"check\",\"ts_us\":1,\"job\":1}\n",
            "{\"event\":\"trace\",\"ph\":\"E\",\"track\":0,\"cat\":\"span\",",
            "\"name\":\"check\",\"ts_us\":900,\"job\":1}\n",
            "{\"event\":\"done\",\"job\":1,\"code\":0}\n",
            "{\"event\":\"dropped\",\"count\":3,\"total\":3}\n",
        ),
    )
    .expect("capture written");
    let report = rlcheck(&["report", capture.to_str().expect("utf-8 path")]);
    assert_eq!(report.status.code(), Some(0));
    let out = stdout(&report);
    assert!(
        out.contains("stream: 1 job(s), 1 heartbeat(s), 2 trace event(s), 3 dropped"),
        "{out}"
    );
    assert!(out.contains("done code 0"), "{out}");
}

// ---------------------------------------------------------------------------
// The percentile telemetry plane: --stats/--metrics histograms, the journal
// reader, and the SLO gate's argument handling.

#[test]
fn stats_and_metrics_carry_percentile_histograms() {
    let dir = std::env::temp_dir().join("rlcheck-hist-v3");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics.jsonl");
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--stats",
        "--metrics",
        path.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    // The --stats footer grows a percentile table below the phase table.
    let err = stderr(&out);
    assert!(err.contains("histogram"), "percentile header: {err}");
    assert!(err.contains("p99"), "{err}");
    assert!(err.contains("opcache/probe_us"), "{err}");
    // Recording histograms upgrades the JSONL schema to v3 with one `hist`
    // line per recorded family.
    let text = std::fs::read_to_string(&path).expect("metrics written");
    assert!(
        text.starts_with("{\"event\":\"meta\",\"schema\":\"rl-obs/v3\""),
        "histograms upgrade the schema: {}",
        text.lines().next().unwrap_or_default()
    );
    assert!(text.contains("\"event\":\"hist\""), "{text}");
}

#[test]
fn report_tolerates_mid_record_truncation() {
    // A daemon (or a run) dying mid-write leaves a metrics file cut inside
    // a record; the offline reader must degrade, not panic.
    let dir = std::env::temp_dir().join("rlcheck-report-truncated");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("metrics.jsonl");
    let trace = dir.join("trace.json");
    let live = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--metrics",
        metrics.to_str().expect("utf-8 path"),
        "--trace-out",
        trace.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(live.status.code(), Some(0));
    let bytes = std::fs::read(&metrics).expect("metrics written");
    assert!(
        bytes.starts_with(b"{\"event\":\"meta\",\"schema\":\"rl-obs/v3\""),
        "v3 file expected"
    );
    // Cut inside the final record (the totals line is last and long).
    let cut = dir.join("cut.jsonl");
    std::fs::write(&cut, &bytes[..bytes.len() - 10]).expect("truncated copy");
    let report = rlcheck(&["report", cut.to_str().expect("utf-8 path")]);
    assert_eq!(report.status.code(), Some(0), "truncation is not fatal");
    assert!(
        stdout(&report).contains("total"),
        "totals reconstructed from spans: {}",
        stdout(&report)
    );
    assert!(
        stderr(&report).contains("truncated"),
        "truncation noted on stderr: {}",
        stderr(&report)
    );
}

#[test]
fn report_dir_tolerates_truncated_and_zero_length_segments() {
    let dir = std::env::temp_dir().join("rlcheck-journal-degraded");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("journal dir");
    // Segment 0: two good samples, then a line cut mid-record.
    let sample = |ts: u64, up: u64, count: u64| {
        format!(
            "{{\"event\":\"sample\",\"ts_ms\":{ts},\"uptime_ms\":{up},\
             \"counters\":{{\"serve/submitted\":1}},\
             \"hists\":{{\"serve/job_wall_us\":{{\"count\":{count},\"sum\":300,\
             \"max\":120,\"buckets\":[[30,{count}]]}}}}}}"
        )
    };
    std::fs::write(
        dir.join("metrics-000000.jsonl"),
        format!(
            "{}\n{}\n{}",
            sample(1_000, 50, 2),
            sample(2_000, 1_050, 3),
            &sample(3_000, 2_050, 4)[..40] // the daemon died mid-write
        ),
    )
    .expect("segment 0");
    // Segment 1: rotated but never written (zero length).
    std::fs::write(dir.join("metrics-000001.jsonl"), "").expect("segment 1");
    // A foreign file in the directory is not a segment and is ignored.
    std::fs::write(dir.join("README.txt"), "not a segment").expect("foreign file");

    let out = rlcheck(&["report", "--dir", dir.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "degraded journal is not fatal");
    let text = stdout(&out);
    assert!(text.contains("2 segments"), "{text}");
    assert!(text.contains("2 samples"), "{text}");
    assert!(text.contains("1 unparsable line(s) skipped"), "{text}");
    assert!(text.contains("serve/job_wall_us"), "{text}");
    assert!(
        stderr(&out).contains("skipped 1 unparsable line(s)"),
        "{}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_and_slo_reject_bad_argument_combinations() {
    // report: a positional file and --dir are mutually exclusive.
    let out = rlcheck(&["report", "x.jsonl", "--dir", "/tmp"]);
    assert_eq!(out.status.code(), Some(2));
    // slo: both the baseline and --dir are required.
    let out = rlcheck(&["slo"]);
    assert_eq!(out.status.code(), Some(2));
    let out = rlcheck(&["slo", "SLO_BASELINE.json"]);
    assert_eq!(out.status.code(), Some(2));
    // slo: a malformed baseline is an input error (2), not a gate failure.
    let dir = std::env::temp_dir().join("rlcheck-slo-bad");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("dir");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\":\"rl-slo/v9\"}").expect("baseline");
    let out = rlcheck(&[
        "slo",
        bad.to_str().expect("utf-8"),
        "--dir",
        dir.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    // slo: an empty journal cannot gate anything — input error, not a pass.
    std::fs::write(&bad, "{\"schema\":\"rl-slo/v1\",\"families\":{}}").expect("baseline");
    let out = rlcheck(&[
        "slo",
        bad.to_str().expect("utf-8"),
        "--dir",
        dir.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("no histogram samples"),
        "{}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
