//! End-to-end tests of the `rlcheck` command-line tool against the sample
//! system files shipped in `examples/systems/`.

use std::path::Path;
use std::process::{Command, Output};

fn rlcheck(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rlcheck"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("rlcheck binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn sample_files_exist() {
    for f in [
        "examples/systems/server.pn",
        "examples/systems/server_err.pn",
        "examples/systems/clock.ts",
    ] {
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR")).join(f).exists(),
            "missing sample {f}"
        );
    }
}

#[test]
fn check_reports_relative_liveness() {
    let out = rlcheck(&["check", "examples/systems/server.pn", "[]<>result"]);
    assert_eq!(out.status.code(), Some(0), "rel-live => exit 0");
    let text = stdout(&out);
    assert!(text.contains("classical  []<>result: fails"));
    assert!(text.contains("rel-live   []<>result: HOLDS"));
    assert!(text.contains("counterexample"));
}

#[test]
fn check_reports_doomed_prefix() {
    let out = rlcheck(&["check", "examples/systems/server_err.pn", "[]<>result"]);
    assert_eq!(out.status.code(), Some(1), "not rel-live => exit 1");
    let text = stdout(&out);
    assert!(text.contains("rel-live   []<>result: fails"));
    assert!(text.contains("doomed prefix: lock"));
}

#[test]
fn abstract_pipeline_flags_non_simplicity() {
    let out = rlcheck(&[
        "abstract",
        "examples/systems/server_err.pn",
        "[]<>result",
        "--keep",
        "request,result,reject",
    ]);
    assert_eq!(out.status.code(), Some(3), "inconclusive => exit 3");
    let text = stdout(&out);
    assert!(text.contains("h simple: fails"));
    assert!(text.contains("violation: lock"));
    assert!(text.contains("INCONCLUSIVE"));
}

#[test]
fn abstract_pipeline_transfers_on_correct_server() {
    let out = rlcheck(&[
        "abstract",
        "examples/systems/server.pn",
        "[]<>result",
        "--keep",
        "request,result,reject",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("h simple: HOLDS"));
    assert!(text.contains("Thm 8.2"));
}

#[test]
fn simplicity_subcommand() {
    let out = rlcheck(&[
        "simplicity",
        "examples/systems/server.pn",
        "--keep",
        "request,result,reject",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("simple: HOLDS"));
}

#[test]
fn fair_subcommand_runs_scheduler() {
    let out = rlcheck(&[
        "fair",
        "examples/systems/clock.ts",
        "[]<>chime",
        "--steps",
        "50",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("synthesized implementation"));
    assert!(text.contains("chime"));
}

#[test]
fn dot_subcommand_outputs_graphviz() {
    let out = rlcheck(&["dot", "examples/systems/clock.ts"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("tick"));
}

#[test]
fn bad_usage_exits_2() {
    let out = rlcheck(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out2 = rlcheck(&["check", "no/such/file.pn", "[]<>x"]);
    assert_eq!(out2.status.code(), Some(2));
    let out3 = rlcheck(&["check", "examples/systems/clock.ts", "[[[["]);
    assert_eq!(out3.status.code(), Some(2));
}

#[test]
fn abp_sample_file_checks() {
    let out = rlcheck(&["check", "examples/systems/abp.ts", "[]<>deliver"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("classical  []<>deliver: fails"));
    assert!(text.contains("rel-live   []<>deliver: HOLDS"));
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn max_states_budget_exhaustion_exits_3() {
    // needle24.ts determinizes to 2^24 subset states; a 10k-state budget
    // must trip almost immediately instead of hanging.
    let out = rlcheck(&[
        "check",
        "examples/systems/needle24.ts",
        "[]<>a",
        "--max-states",
        "10000",
        "--timeout",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(3), "budget exhaustion => exit 3");
    let err = stderr(&out);
    assert!(err.contains("BudgetExceeded"), "stderr: {err}");
    assert!(err.contains("states"), "stderr: {err}");
    assert!(err.contains("limit 10000"), "stderr: {err}");
}

#[test]
fn zero_timeout_exits_3_with_wall_clock_report() {
    let out = rlcheck(&[
        "check",
        "examples/systems/needle24.ts",
        "[]<>a",
        "--timeout",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(3), "deadline exhaustion => exit 3");
    let err = stderr(&out);
    assert!(err.contains("BudgetExceeded"), "stderr: {err}");
    assert!(err.contains("wall-clock"), "stderr: {err}");
}

#[test]
fn budget_flags_do_not_disturb_small_inputs() {
    // The same flags on an easy input leave the verdict (and exit 0) alone.
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--max-states",
        "100000",
        "--timeout",
        "60",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("rel-live   []<>deliver: HOLDS"));
}

#[test]
fn malformed_budget_flags_exit_2() {
    let out = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--timeout",
    ]);
    assert_eq!(out.status.code(), Some(2), "missing value => usage error");
    let out2 = rlcheck(&[
        "check",
        "examples/systems/abp.ts",
        "[]<>deliver",
        "--max-states",
        "many",
    ]);
    assert_eq!(
        out2.status.code(),
        Some(2),
        "non-numeric value => usage error"
    );
}
