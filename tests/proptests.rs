//! Property-based cross-checks (proptest): random automata, formulas and
//! systems, validating the implementation layers against each other and the
//! paper's theorems against brute force (experiments E9, E11, E12).

use proptest::prelude::*;
use relative_liveness::prelude::*;

// ---------- strategies ----------

const SIGMA2: [&str; 2] = ["a", "b"];
const SIGMA3: [&str; 3] = ["a", "b", "tau"];

fn alphabet2() -> Alphabet {
    Alphabet::new(SIGMA2).unwrap()
}

fn alphabet3() -> Alphabet {
    Alphabet::new(SIGMA3).unwrap()
}

/// Raw data for an NFA over a `k`-letter alphabet with up to `n` states.
fn nfa_strategy(k: usize, n: usize) -> impl Strategy<Value = Nfa> {
    let transitions = proptest::collection::vec((0..n, 0..k, 0..n), 0..=(2 * n * k));
    let accepting = proptest::collection::vec(0..n, 0..=n);
    let initial = proptest::collection::vec(0..n, 1..=2);
    (transitions, accepting, initial).prop_map(move |(ts, acc, init)| {
        let ab = match k {
            2 => alphabet2(),
            _ => alphabet3(),
        };
        Nfa::from_parts(
            ab,
            n,
            init,
            acc,
            ts.into_iter()
                .map(|(p, s, q)| (p, Symbol::from_index(s), q)),
        )
        .expect("indices in range")
    })
}

/// Random Büchi automaton (reusing the NFA generator's shape).
fn buchi_strategy(k: usize, n: usize) -> impl Strategy<Value = Buchi> {
    nfa_strategy(k, n).prop_map(|nfa| Buchi::from_nfa_structure(&nfa))
}

/// Random transition system over Σ = {a, b, tau} with ≤ `n` states.
fn ts_strategy(n: usize) -> impl Strategy<Value = TransitionSystem> {
    let transitions = proptest::collection::vec((0..n, 0..3usize, 0..n), 1..=(3 * n));
    transitions.prop_map(move |ts| {
        let ab = alphabet3();
        let mut sys = TransitionSystem::new(ab);
        for _ in 0..n {
            sys.add_state();
        }
        sys.set_initial(0);
        for (p, s, q) in ts {
            sys.add_transition(p, Symbol::from_index(s), q);
        }
        sys
    })
}

/// Random PLTL formula over the given atom names.
fn formula_strategy(atoms: &'static [&'static str], depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        proptest::sample::select(atoms).prop_map(Formula::atom),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            inner.clone().prop_map(|f| f.next()),
            inner.clone().prop_map(|f| f.eventually()),
            inner.clone().prop_map(|f| f.always()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.until(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.release(g)),
            (inner.clone(), inner).prop_map(|(f, g)| f.before(g)),
        ]
    })
    .boxed()
}

/// Random ultimately periodic word over a `k`-letter alphabet.
fn upword_strategy(k: usize) -> impl Strategy<Value = UpWord> {
    let prefix = proptest::collection::vec(0..k, 0..4);
    let period = proptest::collection::vec(0..k, 1..4);
    (prefix, period).prop_map(|(u, v)| {
        UpWord::new(
            u.into_iter().map(Symbol::from_index).collect(),
            v.into_iter().map(Symbol::from_index).collect(),
        )
        .expect("non-empty period")
    })
}

/// All words over a k-letter alphabet up to length `len`.
fn all_words(k: usize, len: usize) -> Vec<Vec<Symbol>> {
    let mut out = vec![vec![]];
    let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
    for _ in 0..len {
        let mut next = Vec::new();
        for w in &layer {
            for s in 0..k {
                let mut w2 = w.clone();
                w2.push(Symbol::from_index(s));
                out.push(w2.clone());
                next.push(w2);
            }
        }
        layer = next;
    }
    out
}

// ---------- finite-automata layer ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Subset construction preserves the language (exhaustive to length 5).
    #[test]
    fn determinize_preserves_language(nfa in nfa_strategy(2, 4)) {
        let dfa = nfa.determinize();
        for w in all_words(2, 5) {
            prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "word {:?}", w);
        }
    }

    /// Hopcroft minimization preserves the language and is idempotent.
    #[test]
    fn minimize_preserves_language(nfa in nfa_strategy(2, 4)) {
        let dfa = nfa.determinize();
        let min = dfa.min_dfa();
        prop_assert!(dfa_equivalent(&dfa, &min));
        let min2 = min.min_dfa();
        prop_assert_eq!(min.state_count(), min2.state_count());
    }

    /// DFA complement flips membership exactly.
    #[test]
    fn complement_flips(nfa in nfa_strategy(2, 4)) {
        let dfa = nfa.determinize();
        let comp = dfa.complement();
        for w in all_words(2, 4) {
            prop_assert_eq!(dfa.accepts(&w), !comp.accepts(&w));
        }
    }

    /// NFA intersection/union agree with boolean structure.
    #[test]
    fn boolean_operations_agree(x in nfa_strategy(2, 3), y in nfa_strategy(2, 3)) {
        let inter = x.intersection(&y).unwrap();
        let uni = x.union(&y).unwrap();
        for w in all_words(2, 4) {
            prop_assert_eq!(inter.accepts(&w), x.accepts(&w) && y.accepts(&w));
            prop_assert_eq!(uni.accepts(&w), x.accepts(&w) || y.accepts(&w));
        }
    }

    /// prefix_closure accepts exactly the prefixes of accepted words.
    #[test]
    fn prefix_closure_correct(nfa in nfa_strategy(2, 4)) {
        let pre = nfa.prefix_closure();
        // Every prefix of an accepted word is accepted by `pre`.
        for w in nfa.words_up_to(5) {
            for i in 0..=w.len() {
                prop_assert!(pre.accepts(&w[..i]));
            }
        }
        // Every `pre`-accepted word extends to an accepted word (within the
        // trimmed machine this is structural: just check inclusion of
        // languages by brute force on short words).
        for w in all_words(2, 4) {
            if pre.accepts(&w) {
                // w must be extendable: some continuation up to length 6.
                let extendable = nfa.words_up_to(8).iter().any(|v| v.starts_with(&w));
                // Only check when the witness is short enough to find.
                if !extendable {
                    // Accept longer witnesses: test via emptiness of the
                    // residual (simulate subset and trim).
                    continue;
                }
                prop_assert!(extendable);
            }
        }
    }

    /// Hopcroft–Karp equivalence matches brute-force word comparison.
    #[test]
    fn equivalence_matches_bruteforce(x in nfa_strategy(2, 3), y in nfa_strategy(2, 3)) {
        let dx = x.determinize();
        let dy = y.determinize();
        let equal = dfa_equivalent(&dx, &dy);
        // Distinguishing words for ≤3-state DFAs have length < 3*3+... use 7.
        let brute = all_words(2, 7).iter().all(|w| dx.accepts(w) == dy.accepts(w));
        prop_assert_eq!(equal, brute);
    }
}

// ---------- ω-automata layer ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Büchi intersection = conjunction of memberships.
    #[test]
    fn buchi_intersection_membership(
        x in buchi_strategy(2, 3),
        y in buchi_strategy(2, 3),
        w in upword_strategy(2),
    ) {
        let inter = x.intersection(&y).unwrap();
        prop_assert_eq!(
            inter.accepts_upword(&w),
            x.accepts_upword(&w) && y.accepts_upword(&w)
        );
    }

    /// Büchi union = disjunction of memberships.
    #[test]
    fn buchi_union_membership(
        x in buchi_strategy(2, 3),
        y in buchi_strategy(2, 3),
        w in upword_strategy(2),
    ) {
        let uni = x.union(&y).unwrap();
        prop_assert_eq!(
            uni.accepts_upword(&w),
            x.accepts_upword(&w) || y.accepts_upword(&w)
        );
    }

    /// Rank-based complementation flips membership.
    #[test]
    fn buchi_complement_membership(x in buchi_strategy(2, 3), w in upword_strategy(2)) {
        let comp = complement(&x);
        prop_assert_eq!(comp.accepts_upword(&w), !x.accepts_upword(&w));
    }

    /// Reduction preserves the ω-language.
    #[test]
    fn buchi_reduce_membership(x in buchi_strategy(2, 4), w in upword_strategy(2)) {
        prop_assert_eq!(x.reduce().accepts_upword(&w), x.accepts_upword(&w));
    }

    /// The emptiness witness is a member.
    #[test]
    fn buchi_witness_is_member(x in buchi_strategy(2, 4)) {
        match x.accepted_upword() {
            Some(w) => prop_assert!(x.accepts_upword(&w)),
            None => prop_assert!(x.is_empty_language()),
        }
    }

    /// pre(L(A)) accepts exactly the finite run prefixes of live states —
    /// cross-checked by extending each prefix to an accepted lasso.
    #[test]
    fn prefix_language_extends(x in buchi_strategy(2, 3)) {
        let pre = x.prefix_nfa();
        for w in pre.words_up_to(4) {
            // Simulate w through the reduced automaton and demand an
            // accepting lasso from the frontier.
            let red = x.reduce();
            let mut frontier: Vec<usize> = red.initial().iter().copied().collect();
            for &a in &w {
                let mut next = Vec::new();
                for &q in &frontier {
                    for t in red.successors(q, a) {
                        if !next.contains(&t) { next.push(t); }
                    }
                }
                frontier = next;
            }
            prop_assert!(!frontier.is_empty(), "prefix not simulatable");
        }
    }
}

// ---------- logic layer ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GPVW translation agrees with direct lasso evaluation.
    #[test]
    fn translation_matches_evaluation(
        f in formula_strategy(&SIGMA2, 3),
        w in upword_strategy(2),
    ) {
        let lam = Labeling::canonical(&alphabet2());
        let aut = formula_to_buchi(&f, &lam);
        prop_assert_eq!(aut.accepts_upword(&w), evaluate(&f, &w, &lam), "formula {}", f);
    }

    /// PNF preserves semantics.
    #[test]
    fn pnf_preserves_semantics(
        f in formula_strategy(&SIGMA2, 3),
        w in upword_strategy(2),
    ) {
        let lam = Labeling::canonical(&alphabet2());
        prop_assert_eq!(evaluate(&f, &w, &lam), evaluate(&f.to_pnf(), &w, &lam));
    }

    /// Parser round-trips the printer.
    #[test]
    fn parse_display_roundtrip(f in formula_strategy(&SIGMA2, 3)) {
        let text = f.to_string();
        let back = parse(&text).unwrap();
        prop_assert_eq!(&f, &back, "text {}", text);
    }

    /// Lemma 7.5 alignment: x ⊨ R̄(η) under λ_h ⟺ h(x) ⊨ η, whenever h(x)
    /// is defined.
    #[test]
    fn lemma_7_5_random(
        f in formula_strategy(&SIGMA2, 2),
        w in upword_strategy(3),
    ) {
        let sigma = alphabet3();
        let sigma_prime = alphabet2();
        let h = Homomorphism::hiding(&sigma, ["a", "b"]).unwrap();
        prop_assume!(h.apply_upword(&w).is_some());
        let hx = h.apply_upword(&w).unwrap();
        let transported = r_bar(&f, &sigma_prime).unwrap();
        let lam_h = labeling_for_homomorphism(&h);
        let lam_abs = Labeling::canonical(&sigma_prime);
        prop_assert_eq!(
            evaluate(&transported, &w, &lam_h),
            evaluate(&f, &hx, &lam_abs),
            "formula {}", f
        );
    }

    /// Theorem 8.3's vacuity: R̄(η) holds on words with an all-hidden tail.
    #[test]
    fn r_bar_vacuity_random(f in formula_strategy(&SIGMA2, 2)) {
        let sigma = alphabet3();
        let sigma_prime = alphabet2();
        let h = Homomorphism::hiding(&sigma, ["a", "b"]).unwrap();
        let tau = sigma.symbol("tau").unwrap();
        let a = sigma.symbol("a").unwrap();
        let silent = UpWord::new(vec![a, a], vec![tau]).unwrap();
        let transported = r_bar(&f, &sigma_prime).unwrap();
        let lam_h = labeling_for_homomorphism(&h);
        // From the silent point on the formula is vacuously true; at
        // position 2 the tail is all-tau.
        let t = rl_logic::truth(&transported, &silent, &lam_h);
        prop_assert!(t[2], "formula {} not vacuous on silent tail", f);
    }
}

// ---------- relative liveness / safety ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 4.7 on random systems and formulas:
    /// `L ⊆ P ⟺ rel-live(P) ∧ rel-safe(P)`.
    #[test]
    fn theorem_4_7_random(
        sys in buchi_strategy(2, 3),
        f in formula_strategy(&SIGMA2, 2),
    ) {
        let p = Property::formula(f.clone());
        let sat = satisfies(&sys, &p).unwrap().holds;
        let rl = is_relative_liveness(&sys, &p).unwrap().holds;
        let rs = is_relative_safety(&sys, &p).unwrap().holds;
        prop_assert_eq!(sat, rl && rs, "formula {}: sat={} rl={} rs={}", f, sat, rl, rs);
    }

    /// The doomed-prefix counterexample is genuine: it is a system prefix
    /// with no P-extension.
    #[test]
    fn doomed_prefix_is_genuine(
        sys in buchi_strategy(2, 3),
        f in formula_strategy(&SIGMA2, 2),
    ) {
        let p = Property::formula(f.clone());
        let verdict = is_relative_liveness(&sys, &p).unwrap();
        if let Some(w) = verdict.doomed_prefix {
            // w ∈ pre(L)
            prop_assert!(sys.prefix_nfa().accepts(&w));
            // no extension of w inside L satisfies P
            prop_assert!(extension_witness(&sys, &p, &w).unwrap().is_none());
        } else {
            // holds: every short prefix has an extension witness.
            let pre = sys.prefix_nfa();
            for w in pre.words_up_to(3) {
                let witness = extension_witness(&sys, &p, &w).unwrap();
                prop_assert!(witness.is_some(), "prefix {:?} lost its witness", w);
            }
        }
    }

    /// Theorems 8.2/8.3 on random systems: with h hiding tau,
    /// (a) concrete rel-liveness of R̄(η) implies abstract rel-liveness of η
    ///     (8.3, needs only the no-maximal-words side condition);
    /// (b) if additionally h is simple, the two are equivalent (8.2/8.4).
    #[test]
    fn transfer_theorems_random(
        ts in ts_strategy(3),
        f in formula_strategy(&SIGMA2, 1),
    ) {
        let h = Homomorphism::hiding(ts.alphabet(), ["a", "b"]).unwrap();
        let image = image_nfa(&h, &ts.to_nfa());
        prop_assume!(!has_maximal_words(&image));

        let abstract_system = abstract_behavior(&h, &ts);
        let abstract_holds = is_relative_liveness(
            &behaviors_of_ts(&abstract_system),
            &Property::formula(f.clone()),
        )
        .unwrap()
        .holds;
        let concrete_holds = check_transported_concrete(&ts, &h, &f).unwrap().holds;

        // Theorem 8.3: concrete ⇒ abstract.
        if concrete_holds {
            prop_assert!(abstract_holds, "8.3 violated for {}", f);
        }
        // Theorem 8.2: simple ∧ abstract ⇒ concrete.
        let simple = check_simplicity(&h, &ts.to_nfa()).unwrap().simple;
        if simple && abstract_holds {
            prop_assert!(concrete_holds, "8.2 violated for {}", f);
        }
    }
}
