//! Executable checks for every numbered result of the paper (experiments
//! E8–E12 of DESIGN.md, deterministic instances; the randomized versions
//! live in tests/proptests.rs).

use relative_liveness::prelude::*;

fn ab2() -> (Alphabet, Symbol, Symbol) {
    let ab = Alphabet::new(["a", "b"]).unwrap();
    (ab.clone(), ab.symbol("a").unwrap(), ab.symbol("b").unwrap())
}

/// Lemma 4.3: `P` rel-live ⟺ `pre(L) = pre(L ∩ P)` — cross-checked on both
/// a holding and a failing instance by computing the prefix languages
/// explicitly.
#[test]
fn lemma_4_3_characterization() {
    let (ab, a, b) = ab2();
    let system = Buchi::universal(ab.clone());
    let p = Property::formula(parse("[]<>a").unwrap());
    let p_aut = p.to_buchi(&ab).unwrap();
    let both = system.intersection(&p_aut).unwrap();
    let pre_l = system.prefix_nfa().determinize();
    let pre_lp = both.prefix_nfa().determinize();
    assert!(dfa_equivalent(&pre_l, &pre_lp));
    assert!(is_relative_liveness(&system, &p).unwrap().holds);

    // Failing case: system = a^ω ∪ b^ω, P = ◇a.
    let sys2 = Buchi::from_parts(ab.clone(), 2, [0, 1], [0, 1], [(0, a, 0), (1, b, 1)]).unwrap();
    let q = Property::formula(parse("<>a").unwrap());
    let q_aut = q.to_buchi(&ab).unwrap();
    let both2 = sys2.intersection(&q_aut).unwrap();
    assert!(!dfa_equivalent(
        &sys2.prefix_nfa().determinize(),
        &both2.prefix_nfa().determinize()
    ));
    assert!(!is_relative_liveness(&sys2, &q).unwrap().holds);
}

/// Lemma 4.4 / relative safety: hand-checked instances.
#[test]
fn lemma_4_4_relative_safety() {
    let (ab, a, b) = ab2();
    // System (ab)^ω: within it, "always (a implies next b)" is rel-safe
    // (it holds outright), and □◇a is also satisfied hence rel-safe.
    let sys = Buchi::from_parts(ab.clone(), 2, [0], [0, 1], [(0, a, 1), (1, b, 0)]).unwrap();
    for text in ["[](a -> X b)", "[]<>a", "[]<>b"] {
        let p = Property::formula(parse(text).unwrap());
        assert!(is_relative_safety(&sys, &p).unwrap().holds, "{text}");
        assert!(satisfies(&sys, &p).unwrap().holds, "{text}");
    }
    // Over Σ^ω, □◇a is NOT rel-safe (liveness is never safety, except ⊤).
    let univ = Buchi::universal(ab);
    let p = Property::formula(parse("[]<>a").unwrap());
    let v = is_relative_safety(&univ, &p).unwrap();
    assert!(!v.holds);
    assert!(v.escaping_behavior.is_some());
}

/// Theorem 4.5, decidability half: the deciders agree with brute-force
/// prefix enumeration on a nontrivial system.
#[test]
fn theorem_4_5_decider_vs_bruteforce() {
    let ts = server_behaviors();
    let behaviors = behaviors_of_ts(&ts);
    let p = Property::formula(parse("[]<>result").unwrap());
    let p_aut = p.to_buchi(ts.alphabet()).unwrap();
    let both = behaviors.intersection(&p_aut).unwrap();
    // Brute force: every firing sequence up to length 6 must be a prefix of
    // some behavior in L ∩ P.
    let pre_lp = both.prefix_nfa();
    for w in ts.firing_sequences_up_to(6) {
        assert!(
            pre_lp.accepts(&w),
            "prefix {} not extendable into P",
            format_word(ts.alphabet(), &w)
        );
    }
    assert!(is_relative_liveness(&behaviors, &p).unwrap().holds);
}

/// Theorem 4.7: `L ⊆ P` ⟺ rel-safe ∧ rel-live — deterministic matrix.
#[test]
fn theorem_4_7_decomposition() {
    let (ab, a, b) = ab2();
    // System: (ab)^ω ∪ a^ω.
    let sys = Buchi::from_parts(ab, 3, [0, 2], [0, 2], [(0, a, 1), (1, b, 0), (2, a, 2)]).unwrap();
    let cases = [
        // (formula, satisfied, rel-live, rel-safe)
        ("[]<>a", true, true, true),
        // the a^ω branch dooms any b-requirement: prefix "aa" has only a^ω
        // as continuation, so <>b is rel-safe (the violation is locally
        // observable) but not rel-live.
        ("<>b", false, false, true),
        ("[]b", false, false, true), // fails at position 0: safety-style
        ("a", true, true, true),
    ];
    for (text, sat, rl, rs) in cases {
        let p = Property::formula(parse(text).unwrap());
        assert_eq!(satisfies(&sys, &p).unwrap().holds, sat, "{text} sat");
        assert_eq!(
            is_relative_liveness(&sys, &p).unwrap().holds,
            rl,
            "{text} rel-live"
        );
        assert_eq!(
            is_relative_safety(&sys, &p).unwrap().holds,
            rs,
            "{text} rel-safe"
        );
        assert_eq!(sat, rl && rs, "{text} theorem 4.7");
    }
    // The remaining quadrant (rel-live but not rel-safe, hence unsatisfied)
    // needs real branching: over Σ^ω, □◇a is exactly that.
    let (ab2_, _, _) = ab2();
    let univ = Buchi::universal(ab2_);
    let p = Property::formula(parse("[]<>a").unwrap());
    assert!(!satisfies(&univ, &p).unwrap().holds);
    assert!(is_relative_liveness(&univ, &p).unwrap().holds);
    assert!(!is_relative_safety(&univ, &p).unwrap().holds);
}

/// Definition 4.6 note: rel-liveness ⟺ machine closure of (L, P ∩ L).
#[test]
fn machine_closure_equivalence() {
    let (ab, a, b) = ab2();
    let sys = Buchi::from_parts(ab.clone(), 2, [0, 1], [0, 1], [(0, a, 0), (1, b, 1)]).unwrap();
    for text in ["<>a", "[]<>a", "true", "[]a | []b"] {
        let p = Property::formula(parse(text).unwrap());
        let p_aut = p.to_buchi(&ab).unwrap();
        let lam = sys.intersection(&p_aut).unwrap();
        assert_eq!(
            is_machine_closed(&sys, &lam).unwrap(),
            is_relative_liveness(&sys, &p).unwrap().holds,
            "{text}"
        );
    }
}

/// Theorem 5.1 on the paper's own Section 5 example, with the full chain:
/// synthesis, behavior preservation, and fair-run satisfaction.
#[test]
fn theorem_5_1_fair_implementation() {
    let (ab, a, b) = ab2();
    let mut minimal = TransitionSystem::new(ab.clone());
    let s = minimal.add_state();
    minimal.set_initial(s);
    minimal.add_transition(s, a, s);
    minimal.add_transition(s, b, s);

    let p = Property::formula(parse("<>(a & X a)").unwrap());
    let imp = synthesize_fair_implementation(&minimal, &p).unwrap();
    // (1) Behaviors preserved.
    assert!(rl_core::implementation_faithful(&minimal, &imp.system));
    // (2) Strictly more states: the paper's "more state information".
    assert!(imp.system.state_count() > 1);
    // (3) Strongly fair executions satisfy the property: run the aging
    // scheduler from several cold starts and check the witness appears.
    let run = rl_exec::run(&imp.system, &mut AgingScheduler::new(), 200);
    assert!(!run.deadlocked);
    assert!(
        run.word.windows(2).any(|w| w[0] == a && w[1] == a),
        "strongly fair run must realize <>(a & X a)"
    );
    // (4) Recurrent states are visited with bounded gaps.
    let gap = run.max_gap_between_visits(&imp.recurrent).unwrap();
    assert!(gap <= imp.system.state_count() * 4, "gap {gap} too large");
}

/// Lemma 7.5, automata-theoretic reading: for words with h defined,
/// satisfaction of R̄(η) under λ_h coincides with satisfaction of η on the
/// image — checked through the inverse-image automaton.
#[test]
fn lemma_7_5_inverse_image() {
    let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
    let h = Homomorphism::hiding(&sigma, ["a", "b"]).unwrap();
    let lam_h = labeling_for_homomorphism(&h);
    let eta = parse("[]<>a").unwrap();
    // Automaton route: h⁻¹(L_η).
    let abs_aut = formula_to_buchi(&eta, &Labeling::canonical(h.target()));
    let inv = inverse_image_buchi(&h, &abs_aut).unwrap();
    // Formula route: R̄(η) under λ_h, restricted to "h defined".
    let transported = r_bar(&eta, h.target()).unwrap();
    let trans_aut = formula_to_buchi(&transported, &lam_h);

    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let tau = sigma.symbol("tau").unwrap();
    let words = [
        UpWord::periodic(vec![a]).unwrap(),
        UpWord::periodic(vec![tau, a]).unwrap(),
        UpWord::periodic(vec![tau, b]).unwrap(),
        UpWord::new(vec![a, tau], vec![b, tau, a]).unwrap(),
        UpWord::new(vec![tau, tau, a], vec![b]).unwrap(),
    ];
    for w in &words {
        // h(w) is defined for all samples: membership must agree.
        assert!(h.apply_upword(w).is_some());
        assert_eq!(
            inv.accepts_upword(w),
            trans_aut.accepts_upword(w),
            "word {w}"
        );
    }
    // Where h is undefined, the inverse image rejects while R̄(η) holds
    // vacuously — the two sides of Lemma 7.5's h⁻¹ restriction.
    let silent = UpWord::new(vec![a], vec![tau]).unwrap();
    assert!(!inv.accepts_upword(&silent));
    assert!(trans_aut.accepts_upword(&silent));
}

/// Lemma 8.1: `lim(h(L)) = h(lim(L))` for prefix-closed regular `L` —
/// sampled both ways on the server example.
#[test]
fn lemma_8_1_limit_commutes() {
    let ts = server_behaviors();
    let h = Homomorphism::hiding(ts.alphabet(), ["request", "result", "reject"]).unwrap();
    let conc = behaviors_of_ts(&ts);
    let abs = behaviors_of_ts(&abstract_behavior(&h, &ts));

    // ⊆: image of every concrete behavior is an abstract behavior.
    let ab = ts.alphabet().clone();
    let samples = [
        UpWord::periodic(parse_word(&ab, "request.yes.result").unwrap()).unwrap(),
        UpWord::new(
            parse_word(&ab, "lock").unwrap(),
            parse_word(&ab, "request.no.reject").unwrap(),
        )
        .unwrap(),
        UpWord::periodic(parse_word(&ab, "lock.free").unwrap()).unwrap(),
        UpWord::new(
            parse_word(&ab, "request.yes").unwrap(),
            parse_word(&ab, "lock.free.result.request.yes").unwrap(),
        )
        .unwrap(),
    ];
    for x in &samples {
        assert!(conc.accepts_upword(x), "sample not a behavior: {x}");
        // A `None` image is a silent tail: no limit image (lock.free cycle).
        if let Some(y) = h.apply_upword(x) {
            assert!(abs.accepts_upword(&y), "image not abstract: {x}");
        }
    }
    // ⊇ (the König direction): every abstract behavior has a concrete
    // preimage — check via the inverse-image automaton: lim(L) ∩ h⁻¹(y)
    // must be non-empty for sampled abstract behaviors y.
    let tb = h.target().clone();
    let abs_samples = [
        UpWord::periodic(parse_word(&tb, "request.result").unwrap()).unwrap(),
        UpWord::periodic(parse_word(&tb, "request.reject").unwrap()).unwrap(),
        UpWord::new(
            parse_word(&tb, "request.result").unwrap(),
            parse_word(&tb, "request.reject.request.result").unwrap(),
        )
        .unwrap(),
    ];
    for y in &abs_samples {
        assert!(abs.accepts_upword(y), "not an abstract behavior: {y}");
        // Singleton abstract language {y} as a Büchi automaton.
        let singleton = upword_automaton(&tb, y);
        let pre_image = inverse_image_buchi(&h, &singleton).unwrap();
        let meet = conc.intersection(&pre_image).unwrap();
        assert!(
            !meet.is_empty_language(),
            "abstract behavior {y} has no concrete preimage"
        );
    }
}

/// Builds a Büchi automaton accepting exactly the single ω-word `w`.
fn upword_automaton(ab: &Alphabet, w: &UpWord) -> Buchi {
    let len = w.lasso_len();
    let mut b = Buchi::new(ab.clone());
    for i in 0..len {
        b.add_state(i >= w.prefix().len());
    }
    b.set_initial(0);
    for i in 0..len {
        b.add_transition(i, w.at(i), w.lasso_next(i) % len);
    }
    b
}

/// Theorems 8.2 + 8.3 (Corollary 8.4) on the paper's systems, both
/// directions, cross-validated against the direct concrete check.
#[test]
fn corollary_8_4_on_paper_systems() {
    let keep = ["request", "result", "reject"];
    let eta = parse("[]<>result").unwrap();

    // Figure 2: simple ⇒ biconditional transfer.
    let good = server_behaviors();
    let h = Homomorphism::hiding(good.alphabet(), keep).unwrap();
    let analysis = verify_via_abstraction(&good, &h, &eta).unwrap();
    assert_eq!(analysis.conclusion, TransferConclusion::ConcreteHolds);
    assert!(check_transported_concrete(&good, &h, &eta).unwrap().holds);

    // Figure 3: not simple; the converse direction (Theorem 8.3) still
    // holds — concrete failure is consistent with abstract success only
    // because the implication goes concrete → abstract.
    let bad = server_err_behaviors();
    let h_bad = Homomorphism::hiding(bad.alphabet(), keep).unwrap();
    let analysis_bad = verify_via_abstraction(&bad, &h_bad, &eta).unwrap();
    assert!(matches!(
        analysis_bad.conclusion,
        TransferConclusion::InconclusiveNotSimple { .. }
    ));
    let concrete = check_transported_concrete(&bad, &h_bad, &eta).unwrap();
    assert!(!concrete.holds);
    // Theorem 8.3 (contrapositive check): had the concrete check succeeded,
    // the abstract one would have to as well. Here abstract holds, concrete
    // fails — allowed exactly because h is not simple.
    assert!(analysis_bad.abstract_verdict.holds);
}

/// Remark 1: on `L_ω = Σ^ω`, relative notions coincide with the classical
/// Alpern–Schneider ones.
#[test]
fn remark_1_classical_specialization() {
    let (ab, _, _) = ab2();
    let live = ["[]<>a", "<>a", "<>(a & X a)", "true"];
    for text in live {
        assert!(
            is_liveness_property(&Property::formula(parse(text).unwrap()), &ab).unwrap(),
            "{text} should be a liveness property"
        );
    }
    let safe = ["[]a", "a", "[](a -> X b)", "true", "false"];
    for text in safe {
        assert!(
            is_safety_property(&Property::formula(parse(text).unwrap()), &ab).unwrap(),
            "{text} should be a safety property"
        );
    }
    // ◇a is not safety; □a is not liveness.
    assert!(!is_safety_property(&Property::formula(parse("<>a").unwrap()), &ab).unwrap());
    assert!(!is_liveness_property(&Property::formula(parse("[]a").unwrap()), &ab).unwrap());
}

/// Lemmas 4.9/4.10 via the Cantor metric utilities (experiment E15).
#[test]
fn topology_lemmas() {
    let ts = server_behaviors();
    let behaviors = behaviors_of_ts(&ts);
    let ab = ts.alphabet().clone();
    let p = Property::formula(parse("[]<>result").unwrap());
    // Density (Lemma 4.9): around the paper's unfair behavior, arbitrarily
    // close P-satisfying behaviors exist.
    let lock = ab.symbol("lock").unwrap();
    let unfair = UpWord::new(vec![lock], parse_word(&ab, "request.no.reject").unwrap()).unwrap();
    assert!(
        certify_density(&behaviors, &p, std::slice::from_ref(&unfair), 8)
            .unwrap()
            .is_none()
    );
    let y = dense_witness(&behaviors, &p, &unfair, 7).unwrap().unwrap();
    assert!(cantor_distance(&unfair, &y) <= 1.0 / 8.0);
    // In the erroneous system density fails at radius index 1 (after lock).
    let bad = behaviors_of_ts(&server_err_behaviors());
    let ab_bad = server_err_behaviors().alphabet().clone();
    let lock_b = ab_bad.symbol("lock").unwrap();
    let req = ab_bad.symbol("request").unwrap();
    let no = ab_bad.symbol("no").unwrap();
    let rej = ab_bad.symbol("reject").unwrap();
    let doomed = UpWord::new(vec![lock_b], vec![req, no, rej]).unwrap();
    let fail = certify_density(&bad, &p, &[doomed], 4).unwrap();
    assert_eq!(fail.map(|(_, n)| n), Some(1));
}

/// The reconstruction finding of DESIGN.md §5.2, pinned: with the *vacuous*
/// reading of R̄, Theorem 8.3 fails on a silently-diverging system; the
/// *strict* reading `R̄(η) ∧ □◇¬ε` repairs it.
#[test]
fn theorem_8_3_requires_strict_r_bar() {
    // s0 --a--> s2, s2 --a--> s0, s2 --tau--> s2 : can go silent forever.
    let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
    let a = sigma.symbol("a").unwrap();
    let tau = sigma.symbol("tau").unwrap();
    let mut ts = TransitionSystem::new(sigma.clone());
    let s0 = ts.add_state();
    let _s1 = ts.add_state();
    let s2 = ts.add_state();
    ts.set_initial(s0);
    ts.add_transition(s0, a, s2);
    ts.add_transition(s2, a, s0);
    ts.add_transition(s2, tau, s2);

    let h = Homomorphism::hiding(&sigma, ["a", "b"]).unwrap();
    let image = image_nfa(&h, &ts.to_nfa());
    assert!(!has_maximal_words(&image), "side condition must hold");

    // η = ◇false is unsatisfiable: not rel-live on the (non-empty) abstract
    // behaviors.
    let eta = parse("<>false").unwrap();
    let abstract_system = abstract_behavior(&h, &ts);
    let abstract_holds = is_relative_liveness(
        &behaviors_of_ts(&abstract_system),
        &Property::formula(eta.clone()),
    )
    .unwrap()
    .holds;
    assert!(!abstract_holds);

    // Vacuous reading: R̄(◇false) degenerates to "eventually always hidden",
    // which IS relatively live concretely — contradicting Theorem 8.3 as
    // literally stated.
    let vacuous = r_bar(&eta, h.target()).unwrap();
    let lam_h = labeling_for_homomorphism(&h);
    let vacuous_holds = is_relative_liveness(
        &behaviors_of_ts(&ts),
        &Property::labeled(vacuous, lam_h.clone()),
    )
    .unwrap()
    .holds;
    assert!(
        vacuous_holds,
        "the vacuous reading must exhibit the 8.3 counterexample"
    );

    // Strict reading: R̄(◇false) ∧ □◇¬ε is not relatively live — Theorem 8.3
    // holds again (this is what the pipeline uses).
    let strict = r_bar_strict(&eta, h.target()).unwrap();
    let strict_holds =
        is_relative_liveness(&behaviors_of_ts(&ts), &Property::labeled(strict, lam_h))
            .unwrap()
            .holds;
    assert!(!strict_holds);
    // And via the public API:
    assert!(!check_transported_concrete(&ts, &h, &eta).unwrap().holds);
}
