//! Reproduction of every figure of the paper (experiments E1–E7 of
//! DESIGN.md).

use relative_liveness::prelude::*;

/// E1 / Figure 1: the server Petri net has the paper's shape and is
/// 1-bounded.
#[test]
fn e1_fig1_server_net() {
    let net = server_net();
    assert_eq!(net.place_count(), 6);
    assert_eq!(net.transition_count(), 7);
    assert_eq!(place_bounds(&net, 1_000).unwrap(), vec![1; 6]);
    for name in ["request", "yes", "no", "result", "reject", "lock", "free"] {
        assert!(net.transition_by_name(name).is_some(), "missing {name}");
    }
}

/// E2 / Figure 2: the reachability graph is the 8-state behavior diagram;
/// its language is prefix closed and deadlock-free, and it admits the
/// paper's unfair computation lock·(request·no·reject)^ω.
#[test]
fn e2_fig2_reachability_graph() {
    let ts = server_behaviors();
    assert_eq!(ts.state_count(), 8);
    assert_eq!(ts.transition_count(), 16);
    assert!(ts.to_nfa().is_prefix_closed());
    for q in 0..ts.state_count() {
        assert!(!ts.is_deadlock(q));
    }
    let ab = ts.alphabet().clone();
    let mut word = parse_word(&ab, "lock").unwrap();
    for _ in 0..8 {
        word.extend(parse_word(&ab, "request.no.reject").unwrap());
    }
    assert!(ts.admits(&word));
    // The paper's unfair computation is a real behavior (ω-word).
    let lock = ab.symbol("lock").unwrap();
    let cycle = parse_word(&ab, "request.no.reject").unwrap();
    let x = UpWord::new(vec![lock], cycle).unwrap();
    assert!(behaviors_of_ts(&ts).accepts_upword(&x));
}

/// E3 / Figure 2 claims: `□◇result` fails classically but is a relative
/// liveness property.
#[test]
fn e3_fig2_relative_liveness_of_box_diamond_result() {
    let behaviors = behaviors_of_ts(&server_behaviors());
    let p = Property::formula(parse("[]<>result").unwrap());
    let classical = satisfies(&behaviors, &p).unwrap();
    assert!(!classical.holds);
    // The classical counterexample has finitely many results.
    let ab = server_behaviors().alphabet().clone();
    let result = ab.symbol("result").unwrap();
    let cex = classical.counterexample.unwrap();
    assert!(cex.period().iter().all(|&s| s != result));

    let relative = is_relative_liveness(&behaviors, &p).unwrap();
    assert!(relative.holds);
    assert_eq!(relative.doomed_prefix, None);
}

/// E4 / Figure 3: in the erroneous system no fairness can rescue
/// `□◇result`; the decider reports `lock` as the doomed prefix.
#[test]
fn e4_fig3_not_relative_liveness() {
    let ts = server_err_behaviors();
    let behaviors = behaviors_of_ts(&ts);
    let p = Property::formula(parse("[]<>result").unwrap());
    let verdict = is_relative_liveness(&behaviors, &p).unwrap();
    assert!(!verdict.holds);
    let prefix = verdict.doomed_prefix.unwrap();
    assert_eq!(format_word(ts.alphabet(), &prefix), "lock");
    // But "the client keeps getting answers" is still relatively live.
    let answers = Property::formula(parse("[]<>(result | reject)").unwrap());
    assert!(is_relative_liveness(&behaviors, &answers).unwrap().holds);
}

/// E5 / Figure 4: both systems abstract (under h keeping request, result,
/// reject) to the same minimized 2-state system, with the request →
/// (result | reject) shape.
#[test]
fn e5_fig4_abstraction_image() {
    let keep = ["request", "result", "reject"];
    let good = server_behaviors();
    let bad = server_err_behaviors();
    let h_good = Homomorphism::hiding(good.alphabet(), keep).unwrap();
    let h_bad = Homomorphism::hiding(bad.alphabet(), keep).unwrap();
    let abs_good = abstract_behavior(&h_good, &good);
    let abs_bad = abstract_behavior(&h_bad, &bad);
    assert_eq!(abs_good.state_count(), 2);
    assert_eq!(abs_bad.state_count(), 2);
    // Identical abstract languages.
    assert!(dfa_equivalent(
        &abs_good.to_nfa().determinize(),
        &abs_bad.to_nfa().determinize()
    ));
    // Shape: request then (result | reject), repeating.
    let ab = abs_good.alphabet().clone();
    let request = ab.symbol("request").unwrap();
    let result = ab.symbol("result").unwrap();
    let reject = ab.symbol("reject").unwrap();
    assert!(abs_good.admits(&[request, result, request, reject]));
    assert!(!abs_good.admits(&[result]));
    assert!(!abs_good.admits(&[request, request]));
}

/// E6 / Sections 2 & 8: h is simple on the Figure-2 language, not simple on
/// the Figure-3 language (violation at `lock`).
#[test]
fn e6_simplicity_separates_fig2_from_fig3() {
    let keep = ["request", "result", "reject"];
    let good = server_behaviors();
    let h = Homomorphism::hiding(good.alphabet(), keep).unwrap();
    let report = check_simplicity(&h, &good.to_nfa()).unwrap();
    assert!(report.simple);
    assert_eq!(report.violation, None);

    let bad = server_err_behaviors();
    let h_bad = Homomorphism::hiding(bad.alphabet(), keep).unwrap();
    let report_bad = check_simplicity(&h_bad, &bad.to_nfa()).unwrap();
    assert!(!report_bad.simple);
    assert_eq!(
        format_word(bad.alphabet(), &report_bad.violation.unwrap()),
        "lock"
    );
}

/// E7 / Figure 5: the `T`/`R̄` transformation, row by row.
#[test]
fn e7_fig5_transformation_rows() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();

    // Booleans are wrapped with the skip-to-visible operator.
    let wrapped = r_bar(&parse("a").unwrap(), &sigma).unwrap();
    assert_eq!(wrapped.to_string(), "ε U (a & !ε) | []ε");

    // b̂ (binary boolean operators) commute with T at the temporal level.
    let or = r_bar(&parse("a U a | b U b").unwrap(), &sigma).unwrap();
    match or {
        Formula::Or(_, _) => {}
        other => panic!("expected disjunction, got {other}"),
    }

    // U and R are homomorphic.
    let until = r_bar(&parse("a U b").unwrap(), &sigma).unwrap();
    match until {
        Formula::Until(_, _) => {}
        other => panic!("expected until, got {other}"),
    }
    let release = r_bar(&parse("a R b").unwrap(), &sigma).unwrap();
    match release {
        Formula::Release(_, _) => {}
        other => panic!("expected release, got {other}"),
    }

    // O gains the ε-skipping guard.
    let next = r_bar(&parse("X a").unwrap(), &sigma).unwrap();
    let text = next.to_string();
    assert!(
        text.contains("ε U"),
        "next must skip hidden letters: {text}"
    );
    assert!(
        text.contains("[]ε"),
        "next must be vacuous on silent tails: {text}"
    );

    // T itself (documented variant): homomorphic on U.
    let t = transform_t(&parse("a U b").unwrap());
    assert_eq!(t, parse("a U b").unwrap());
}
