//! Second wave of property-based tests: abstraction invariants, execution
//! fairness, the probabilistic module, ω-operations, and the CTL*-fragment
//! correspondence.

use proptest::prelude::*;
use relative_liveness::prelude::*;

const SIGMA3: [&str; 3] = ["a", "b", "tau"];

fn alphabet2() -> Alphabet {
    Alphabet::new(["a", "b"]).unwrap()
}

fn alphabet3() -> Alphabet {
    Alphabet::new(SIGMA3).unwrap()
}

/// Random TS over {a,b,tau}; may contain deadlocks.
fn ts_strategy(n: usize) -> impl Strategy<Value = TransitionSystem> {
    let transitions = proptest::collection::vec((0..n, 0..3usize, 0..n), 1..=(3 * n));
    transitions.prop_map(move |ts| {
        let ab = alphabet3();
        let mut sys = TransitionSystem::new(ab);
        for _ in 0..n {
            sys.add_state();
        }
        sys.set_initial(0);
        for (p, s, q) in ts {
            sys.add_transition(p, Symbol::from_index(s), q);
        }
        sys
    })
}

/// Random *deterministic*, deadlock-free TS over {a,b}: per (state, symbol)
/// at most one successor, and every state keeps at least one edge.
fn det_ts_strategy(n: usize) -> impl Strategy<Value = TransitionSystem> {
    let cells = proptest::collection::vec(proptest::option::of(0..n), 2 * n);
    (cells, proptest::collection::vec(0..n, n)).prop_map(move |(cells, fallback)| {
        let ab = alphabet2();
        let mut sys = TransitionSystem::new(ab);
        for _ in 0..n {
            sys.add_state();
        }
        sys.set_initial(0);
        for q in 0..n {
            for s in 0..2usize {
                if let Some(t) = cells[q * 2 + s] {
                    sys.add_transition(q, Symbol::from_index(s), t);
                }
            }
            if sys.enabled(q).is_empty() {
                sys.add_transition(q, Symbol::from_index(0), fallback[q]);
            }
        }
        sys
    })
}

fn upword_strategy(k: usize) -> impl Strategy<Value = UpWord> {
    let prefix = proptest::collection::vec(0..k, 0..4);
    let period = proptest::collection::vec(0..k, 1..4);
    (prefix, period).prop_map(|(u, v)| {
        UpWord::new(
            u.into_iter().map(Symbol::from_index).collect(),
            v.into_iter().map(Symbol::from_index).collect(),
        )
        .expect("non-empty period")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The identity homomorphism is simple on every prefix-closed language.
    #[test]
    fn identity_homomorphism_always_simple(ts in ts_strategy(4)) {
        let ab = ts.alphabet().clone();
        let h = Homomorphism::new(&ab, &ab, |n| Some(n.to_owned())).unwrap();
        let report = check_simplicity(&h, &ts.to_nfa()).unwrap();
        prop_assert!(report.simple);
    }

    /// abstract_behavior generates exactly h(L): language equality of the
    /// determinized image and the generated system's language.
    #[test]
    fn abstract_behavior_generates_image_language(ts in ts_strategy(4)) {
        let h = Homomorphism::hiding(ts.alphabet(), ["a", "b"]).unwrap();
        let image = image_nfa(&h, &ts.to_nfa());
        let abs = abstract_behavior(&h, &ts);
        prop_assert!(dfa_equivalent(
            &image.determinize(),
            &abs.to_nfa().determinize()
        ));
    }

    /// Inverse image: w ∈ h⁻¹(L') ⟺ h(w) ∈ L', brute-forced on short words.
    #[test]
    fn inverse_image_pointwise(ts in ts_strategy(3)) {
        let h = Homomorphism::hiding(ts.alphabet(), ["a", "b"]).unwrap();
        // L' = image of the system language (arbitrary non-trivial choice).
        let lp = image_nfa(&h, &ts.to_nfa());
        let inv = inverse_image_nfa(&h, &lp);
        // Enumerate concrete words up to length 4.
        let ab = ts.alphabet().clone();
        let mut words: Vec<Vec<Symbol>> = vec![vec![]];
        let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &layer {
                for s in ab.symbols() {
                    let mut w2 = w.clone();
                    w2.push(s);
                    words.push(w2.clone());
                    next.push(w2);
                }
            }
            layer = next;
        }
        for w in words {
            let img = h.apply_word(&w);
            prop_assert_eq!(inv.accepts(&w), lp.accepts(&img), "word {:?}", w);
        }
    }

    /// The #-extension always removes maximal words.
    #[test]
    fn hash_extension_removes_maximal_words(ts in ts_strategy(4)) {
        let h = Homomorphism::hiding(ts.alphabet(), ["a", "b"]).unwrap();
        let image = image_nfa(&h, &ts.to_nfa());
        let extended = extend_with_hash(&image).unwrap();
        prop_assert!(!has_maximal_words(&extended));
    }

    /// The aging scheduler is empirically strongly fair: on deadlock-free
    /// deterministic systems, every transition whose source is visited
    /// often is taken a positive fraction of the time.
    #[test]
    fn aging_scheduler_is_fair(ts in det_ts_strategy(4)) {
        let r = run(&ts, &mut AgingScheduler::new(), 400);
        prop_assert!(!r.deadlocked);
        prop_assert!(min_fairness_ratio(&ts, &r, 50) > 0.0);
    }

    /// Sampled lassos are always genuine behaviors of the system.
    #[test]
    fn sampled_lassos_are_behaviors(ts in det_ts_strategy(4), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(w) = sample_lasso(&ts, &mut rng, 64) {
            let unrolled = w.unroll(w.lasso_len() + 2 * w.period().len());
            prop_assert!(ts.admits(&unrolled));
        }
    }

    /// Exact Markov recurrence agrees with sign of the Monte-Carlo estimate
    /// on deterministic deadlock-free systems: probability 0 ⇒ estimate
    /// (almost) 0; probability 1 ⇒ estimate (near) 1.
    #[test]
    fn markov_vs_montecarlo(ts in det_ts_strategy(3)) {
        let a = ts.alphabet().symbol("a").unwrap();
        let p = probability_of_recurrence(&ts, a);
        let lam = Labeling::canonical(ts.alphabet());
        let est = estimate_satisfaction(&ts, &parse("[]<>a").unwrap(), &lam, 200, 9);
        if p < 1e-9 {
            prop_assert!(est.probability < 0.2, "p=0 but estimate {}", est.probability);
        }
        if p > 1.0 - 1e-9 {
            prop_assert!(est.probability > 0.8, "p=1 but estimate {}", est.probability);
        }
    }

    /// ∀□∃◇-recurrence coincides with relative liveness of □◇a on
    /// deterministic systems.
    #[test]
    fn ctl_fragment_matches_relative_liveness(ts in det_ts_strategy(4)) {
        let a = ts.alphabet().symbol("a").unwrap();
        let ctl = forall_always_recurrently(&ts, a).is_none();
        let rl = is_relative_liveness_of_ts(
            &ts,
            &Property::formula(parse("[]<>a").unwrap()),
        )
        .unwrap()
        .holds;
        prop_assert_eq!(ctl, rl);
    }

    /// ω-inclusion is sound: when it reports inclusion, sampled members of
    /// the left language belong to the right one; its counterexample is
    /// genuine otherwise.
    #[test]
    fn omega_inclusion_sound(x in ts_strategy(3), y in ts_strategy(3)) {
        let bx = behaviors_of_ts(&x);
        let by = behaviors_of_ts(&y);
        match omega_included(&bx, &by).unwrap() {
            None => {
                if let Some(w) = bx.accepted_upword() {
                    prop_assert!(by.accepts_upword(&w));
                }
            }
            Some(w) => {
                prop_assert!(bx.accepts_upword(&w));
                prop_assert!(!by.accepts_upword(&w));
            }
        }
    }

    /// The Cantor distance is an ultrametric on random word triples.
    #[test]
    fn cantor_ultrametric(
        x in upword_strategy(2),
        y in upword_strategy(2),
        z in upword_strategy(2),
    ) {
        let dxy = cantor_distance(&x, &y);
        let dyz = cantor_distance(&y, &z);
        let dxz = cantor_distance(&x, &z);
        prop_assert!(dxz <= dxy.max(dyz) + 1e-12);
        prop_assert_eq!(dxy, cantor_distance(&y, &x));
        prop_assert_eq!(cantor_distance(&x, &x.clone()), 0.0);
    }

    /// UpWord canonical equality is reflexive/symmetric and consistent with
    /// the distance being zero.
    #[test]
    fn upword_equality_consistency(x in upword_strategy(2), y in upword_strategy(2)) {
        prop_assert!(x.same_word(&x.clone()));
        prop_assert_eq!(x.same_word(&y), y.same_word(&x));
        prop_assert_eq!(x.same_word(&y), cantor_distance(&x, &y) == 0.0);
        // Unrollings of equal words agree everywhere (spot-check 12 letters).
        if x.same_word(&y) {
            prop_assert_eq!(x.unroll(12), y.unroll(12));
        }
    }

    /// Resource governance never changes answers: a budgeted check either
    /// returns the same verdict as the unbudgeted one or fails with a budget
    /// error — it never reports a *different* verdict.
    #[test]
    fn budgeted_check_never_lies(ts in ts_strategy(4), max_states in 1usize..400) {
        let p = Property::formula(parse("[]<>a").unwrap());
        let truth = is_relative_liveness_of_ts(&ts, &p).unwrap().holds;
        let guard = Guard::new(Budget::unlimited().with_max_states(max_states));
        match is_relative_liveness_of_ts_with(&ts, &p, &guard) {
            Ok(verdict) => prop_assert_eq!(verdict.holds, truth),
            Err(e) => {
                let e = CheckError::from(e);
                prop_assert!(
                    matches!(
                        e,
                        CheckError::BudgetExceeded { .. } | CheckError::Cancelled { .. }
                    ),
                    "budgeted run failed with a non-budget error: {}", e
                );
            }
        }
    }

    /// The fair-implementation synthesis preserves behaviors whenever the
    /// property is relatively live (random systems × a small formula pool).
    #[test]
    fn synthesis_roundtrip_random(ts in det_ts_strategy(3), pick in 0usize..4) {
        let texts = ["[]<>a", "<>a", "a U b", "<>(a & X b)"];
        let eta = parse(texts[pick]).unwrap();
        let p = Property::formula(eta);
        match synthesize_fair_implementation(&ts, &p) {
            Ok(imp) => {
                prop_assert!(rl_core::implementation_faithful(&ts, &imp.system));
            }
            Err(CoreError::Precondition(_)) => {
                // Property was not relatively live: verify that's the truth.
                let rl = is_relative_liveness_of_ts(&ts, &p).unwrap();
                prop_assert!(!rl.holds);
            }
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }
}

// ---------- regex layer ----------

/// Random regex over a 2-letter alphabet.
fn regex_strategy() -> BoxedStrategy<rl_automata::Regex> {
    use rl_automata::Regex;
    let ab = alphabet2();
    let a = ab.symbol("a").unwrap();
    let b = ab.symbol("b").unwrap();
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        Just(Regex::Empty),
        Just(Regex::symbol(&ab, a)),
        Just(Regex::symbol(&ab, b)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.then(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.or(y)),
            inner.prop_map(|x| x.star()),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Thompson construction and Brzozowski derivatives agree (exhaustive
    /// on words up to length 5).
    #[test]
    fn regex_nfa_matches_derivatives(re in regex_strategy()) {
        let ab = alphabet2();
        let nfa = re.to_nfa_over(&ab).unwrap();
        let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
        for len in 0..=5usize {
            for w in &layer {
                prop_assert_eq!(nfa.accepts(w), re.matches(w), "re {} word {:?}", re, w);
            }
            if len < 5 {
                let mut next = Vec::new();
                for w in &layer {
                    for s in ab.symbols() {
                        let mut w2 = w.clone();
                        w2.push(s);
                        next.push(w2);
                    }
                }
                layer = next;
            }
        }
    }

    /// Simplification preserves PLTL semantics on random formula/word pairs.
    #[test]
    fn simplify_preserves_semantics(
        f in formula_pool(),
        w in upword_strategy(2),
    ) {
        let lam = Labeling::canonical(&alphabet2());
        let s = simplify(&f);
        prop_assert!(s.size() <= f.size());
        prop_assert_eq!(evaluate(&f, &w, &lam), evaluate(&s, &w, &lam), "formula {}", f);
    }
}

/// Random formulas reusing the pool from the primary proptest file (local
/// copy — integration tests cannot share modules).
fn formula_pool() -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        Just(Formula::atom("a")),
        Just(Formula::atom("b")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            inner.clone().prop_map(|f| f.next()),
            inner.clone().prop_map(|f| f.eventually()),
            inner.clone().prop_map(|f| f.always()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.until(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.release(g)),
            (inner.clone(), inner).prop_map(|(f, g)| f.before(g)),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compositional abstraction agrees with the monolithic construction on
    /// random component pairs with local hidden actions.
    #[test]
    fn compositional_matches_monolithic(
        t1 in proptest::collection::vec((0..3usize, 0..2usize, 0..3usize), 1..8),
        t2 in proptest::collection::vec((0..3usize, 0..2usize, 0..3usize), 1..8),
    ) {
        // Component 1 over {shared, tau1}; component 2 over {shared, tau2}.
        let mk = |names: [&str; 2], edges: &[(usize, usize, usize)]| {
            let ab = Alphabet::new(names).unwrap();
            let mut ts = TransitionSystem::new(ab);
            for _ in 0..3 {
                ts.add_state();
            }
            ts.set_initial(0);
            for &(p, s, q) in edges {
                ts.add_transition(p, Symbol::from_index(s), q);
            }
            ts
        };
        let c1 = mk(["shared", "tau1"], &t1);
        let c2 = mk(["shared", "tau2"], &t2);
        let composite = c1.compose(&c2).unwrap();
        let h = Homomorphism::hiding(composite.alphabet(), ["shared"]).unwrap();
        let mono = abstract_behavior(&h, &composite);
        let comp = compositional_abstract_behavior(&[c1, c2], &h).unwrap();
        prop_assert_eq!(mono.alphabet(), comp.alphabet());
        prop_assert!(dfa_equivalent(
            &mono.to_nfa().determinize(),
            &comp.to_nfa().determinize()
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The recurrence-strengthened ∀□∃◇ check implies the plain one (a
    /// recurrently reachable action is in particular reachable).
    #[test]
    fn ctl_recurrent_implies_reachable(ts in ts_strategy(4)) {
        let a = ts.alphabet().symbol("a").unwrap();
        if forall_always_recurrently(&ts, a).is_none() {
            prop_assert_eq!(forall_always_exists_eventually(&ts, a), None);
        }
    }

    /// Weak until agrees with its defining identity (ξ U ζ) ∨ □ξ on random
    /// operands and lassos, through both evaluation and translation.
    #[test]
    fn weak_until_identity(w in upword_strategy(2)) {
        let lam = Labeling::canonical(&alphabet2());
        let weak = parse("a W b").unwrap();
        let def = parse("(a U b) | []a").unwrap();
        prop_assert_eq!(evaluate(&weak, &w, &lam), evaluate(&def, &w, &lam));
        let aut = formula_to_buchi(&weak, &lam);
        prop_assert_eq!(aut.accepts_upword(&w), evaluate(&def, &w, &lam));
    }

    /// JSON round-trips preserve NFA languages on random machines.
    #[test]
    fn serde_nfa_roundtrip(raw in proptest::collection::vec((0..4usize, 0..2usize, 0..4usize), 0..12)) {
        let ab = alphabet2();
        let nfa = Nfa::from_parts(
            ab,
            4,
            [0],
            [1, 3],
            raw.into_iter().map(|(p, s, q)| (p, Symbol::from_index(s), q)),
        )
        .unwrap();
        let json = relative_liveness::json::to_string(&nfa).unwrap();
        let back: Nfa = relative_liveness::json::from_str(&json).unwrap();
        prop_assert!(dfa_equivalent(&nfa.determinize(), &back.determinize()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simulation is sound for language inclusion on random systems.
    #[test]
    fn simulation_implies_trace_inclusion(
        spec in ts_strategy(4),
        imp in ts_strategy(4),
    ) {
        if simulates(&spec, &imp) {
            prop_assert!(
                dfa_included(&imp.to_nfa().determinize(), &spec.to_nfa().determinize())
                    .is_none()
            );
        }
    }

    /// The largest simulation is reflexive and transitive (preorder laws)
    /// on a random system against itself.
    #[test]
    fn simulation_is_a_preorder(ts in ts_strategy(4)) {
        let rel = largest_simulation(&ts, &ts);
        for q in 0..ts.state_count() {
            prop_assert!(rel.contains(&(q, q)), "reflexivity at {q}");
        }
        for &(a, b) in &rel {
            for &(b2, c) in &rel {
                if b == b2 {
                    prop_assert!(rel.contains(&(a, c)), "transitivity {a}≤{b}≤{c}");
                }
            }
        }
    }
}
