//! The paper's concluding question, made executable: how does relative
//! liveness relate to *probabilistic* truth?
//!
//! > "Relative liveness properties reveal a satisfaction relation … 'almost
//! > all computations satisfy the property.' In this sense, they appear to
//! > be close to properties that are probabilistically true. It would be an
//! > interesting topic for further study to investigate the exact link."
//!
//! We compare three checks on each system/property pair:
//! 1. relative liveness (the paper's notion, exact),
//! 2. exact probability under the uniform random scheduler (bottom-SCC
//!    absorption analysis),
//! 3. a Monte-Carlo estimate from sampled random lassos.
//!
//! The outcome: the notions agree on the paper's examples, but `◇□a` over
//! `{a,b}^ω` separates them — relatively live yet almost surely false.
//!
//! Run with: `cargo run --example probabilistic_link`

use relative_liveness::prelude::*;

fn report(
    name: &str,
    ts: &TransitionSystem,
    formula_text: &str,
    recurrence_action: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let eta = parse(formula_text)?;
    let behaviors = behaviors_of_ts(ts);
    let rl = is_relative_liveness(&behaviors, &Property::formula(eta.clone()))?;
    let lam = Labeling::canonical(ts.alphabet());
    let est = estimate_satisfaction(ts, &eta, &lam, 2_000, 17);
    print!(
        "{name:<28} {formula_text:<14} rel-live: {:<5}  MC-estimate: {:>5.2}",
        rl.holds, est.probability
    );
    if let Some(action) = recurrence_action {
        let sym = ts.alphabet().symbol(action).expect("known action");
        print!(
            "  exact Pr(□◇{action}): {:.2}",
            probability_of_recurrence(ts, sym)
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("system                       property       relative vs probabilistic");
    println!("{}", "-".repeat(86));
    report(
        "server (Figure 2)",
        &server_behaviors(),
        "[]<>result",
        Some("result"),
    )?;
    report(
        "erroneous server (Figure 3)",
        &server_err_behaviors(),
        "[]<>result",
        Some("result"),
    )?;

    // The separating example: {a,b}^ω with ◇□a.
    let ab = Alphabet::new(["a", "b"])?;
    let a = ab.symbol("a").unwrap();
    let b = ab.symbol("b").unwrap();
    let mut coin = TransitionSystem::new(ab);
    let s = coin.add_state();
    coin.set_initial(s);
    coin.add_transition(s, a, s);
    coin.add_transition(s, b, s);
    report("coin flips {a,b}^ω", &coin, "<>[]a", None)?;
    report("coin flips {a,b}^ω", &coin, "[]<>a", Some("a"))?;

    println!();
    println!("Conclusion: on the paper's examples relative liveness and almost-sure");
    println!("truth agree — but <>[]a over coin flips is relatively live (extend any");
    println!("prefix with a^ω) while its probability is 0: the notions are close,");
    println!("not equal, answering the paper's closing question by counterexample.");
    Ok(())
}
