//! Theorem 5.1 in action: synthesizing an implementation whose strongly
//! fair runs satisfy a relative liveness property.
//!
//! Section 5's own example: over the behavior set `{a,b}^ω`, the property
//! `◇(a ∧ O a)` ("eventually two a's in a row") is relatively live, yet
//! strong fairness on the *minimal* one-state system does not guarantee it
//! — the system must remember whether the previous action was an `a`. The
//! theorem's construction adds exactly that state information.
//!
//! Run with: `cargo run --example fair_implementation`

use relative_liveness::prelude::*;

fn show_run(name: &str, ts: &TransitionSystem, r: &rl_exec::Run) {
    let counts = r.action_counts();
    let summary: Vec<String> = counts
        .iter()
        .map(|(&a, &n)| format!("{}×{n}", ts.alphabet().name(a)))
        .collect();
    println!("  {name}: {} steps — {}", r.len(), summary.join(", "));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The minimal system for {a,b}^ω: one state, two self-loops.
    let ab = Alphabet::new(["a", "b"])?;
    let a = ab.symbol("a").unwrap();
    let b = ab.symbol("b").unwrap();
    let mut minimal = TransitionSystem::new(ab.clone());
    let s = minimal.add_state();
    minimal.set_initial(s);
    minimal.add_transition(s, a, s);
    minimal.add_transition(s, b, s);

    let eta = parse("<>(a & X a)")?;
    let property = Property::formula(eta.clone());
    println!("Property: {eta} over {{a,b}}^ω");
    println!(
        "Relative liveness: {}",
        if is_relative_liveness(&behaviors_of_ts(&minimal), &property)?.holds {
            "holds"
        } else {
            "fails"
        }
    );

    // On the minimal system, the strongly fair aging scheduler alternates
    // a, b, a, b, … and NEVER produces two consecutive a's: fairness alone
    // is not enough (the paper's Section 5 observation).
    let run_min = run(&minimal, &mut AgingScheduler::new(), 60);
    let word_names: Vec<&str> = run_min.word.iter().take(12).map(|&x| ab.name(x)).collect();
    println!(
        "\nStrongly fair run of the MINIMAL system (prefix): {}",
        word_names.join(".")
    );
    let has_aa = run_min.word.windows(2).any(|w| w[0] == a && w[1] == a);
    println!(
        "  contains 'a.a'? {}",
        if has_aa {
            "yes"
        } else {
            "NO — property missed!"
        }
    );

    // Theorem 5.1: synthesize the enriched implementation.
    let imp = synthesize_fair_implementation(&minimal, &property)?;
    println!(
        "\nSynthesized implementation: {} states (minimal had {}), recurrent: {}",
        imp.system.state_count(),
        minimal.state_count(),
        imp.recurrent.iter().filter(|&&r| r).count()
    );
    println!(
        "  behaviors preserved: {}",
        rl_core::implementation_faithful(&minimal, &imp.system)
    );

    // A strongly fair run of the synthesized system DOES satisfy <>( a & X a).
    let run_imp = run(&imp.system, &mut AgingScheduler::new(), 60);
    let has_aa2 = run_imp.word.windows(2).any(|w| w[0] == a && w[1] == a);
    let names2: Vec<&str> = run_imp.word.iter().take(12).map(|&x| ab.name(x)).collect();
    println!(
        "\nStrongly fair run of the SYNTHESIZED system (prefix): {}",
        names2.join(".")
    );
    println!(
        "  contains 'a.a'? {}",
        if has_aa2 {
            "YES — property achieved"
        } else {
            "no"
        }
    );

    // It also keeps visiting the recurrent (accepting) states.
    if let Some(gap) = run_imp.max_gap_between_visits(&imp.recurrent) {
        println!("  max gap between recurrent-state visits: {gap} steps");
    }

    // And it is genuinely fair:
    println!(
        "  empirical fairness ratio: {:.2}",
        min_fairness_ratio(&imp.system, &run_imp, 5)
    );

    show_run("fair run (minimal)", &minimal, &run_min);
    show_run("fair run (synthesized)", &imp.system, &run_imp);
    let _ = b;
    Ok(())
}
