# Worst-case input for the subset construction: the classical
# "nth symbol from the end is an a" guessing automaton, n = 24.
# The system itself has only n+1 states, but determinizing its prefix
# language (which every relative-liveness check does) needs 2^24 subset
# states. Use it to exercise rlcheck's --timeout / --max-states budgets:
#
#   rlcheck check examples/systems/needle24.ts '[]<>a' --max-states 10000 --timeout 5
#
system
alphabet: a b
initial: s0
s0 a -> s0
s0 b -> s0
s0 a -> c1   # guess: this a is 24th from the end of the window
c1 a -> c2
c1 b -> c2
c2 a -> c3
c2 b -> c3
c3 a -> c4
c3 b -> c4
c4 a -> c5
c4 b -> c5
c5 a -> c6
c5 b -> c6
c6 a -> c7
c6 b -> c7
c7 a -> c8
c7 b -> c8
c8 a -> c9
c8 b -> c9
c9 a -> c10
c9 b -> c10
c10 a -> c11
c10 b -> c11
c11 a -> c12
c11 b -> c12
c12 a -> c13
c12 b -> c13
c13 a -> c14
c13 b -> c14
c14 a -> c15
c14 b -> c15
c15 a -> c16
c15 b -> c16
c16 a -> c17
c16 b -> c17
c17 a -> c18
c17 b -> c18
c18 a -> c19
c18 b -> c19
c19 a -> c20
c19 b -> c20
c20 a -> c21
c20 b -> c21
c21 a -> c22
c21 b -> c22
c22 a -> c23
c22 b -> c23
c23 a -> c24
c23 b -> c24
c24 a -> s0
c24 b -> s0
c24 a -> c1
