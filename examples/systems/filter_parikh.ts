# Parikh-refutable instance: the letter `c` leads into a b-only tail, so
# no behavior with infinitely many `a`s ever contains a `c` — the support
# analysis of the pre-filter ladder refutes `[]<>a` from letter counts
# alone, with the shortest system word containing `c` as the doomed
# prefix. The needle window (a 14-deep history guess, as in needle24.ts)
# makes the exact core pay a 2^14 subset construction for the same answer.
# Try: rlcheck check examples/systems/filter_parikh.ts "[]<>a" --stats
system
alphabet: a b c
initial: s0
s0 a -> s0
s0 b -> s0
s0 a -> c1   # guess: this a opens the window
c1 a -> c2
c1 b -> c2
c2 a -> c3
c2 b -> c3
c3 a -> c4
c3 b -> c4
c4 a -> c5
c4 b -> c5
c5 a -> c6
c5 b -> c6
c6 a -> c7
c6 b -> c7
c7 a -> c8
c7 b -> c8
c8 a -> c9
c8 b -> c9
c9 a -> c10
c9 b -> c10
c10 a -> c11
c10 b -> c11
c11 a -> c12
c11 b -> c12
c12 a -> c13
c12 b -> c13
c13 a -> c14
c13 b -> c14
c14 a -> s0
c14 b -> s0
c14 a -> c1
c14 c -> t    # only the end of the window can fail over...
t b -> t      # ...and after that, no a is ever possible again
