# Mod-k-refutable instance: in the live component, `a` and `b` strictly
# alternate (#a − #b stays in {0, 1} on every prefix), while `x` and `y`
# are free bookkeeping moves; an early `b` wedges into the b-only sink
# `d1` and kills the recurrence of `a`. Letter supports and boundedness
# agree between pre(L) and pre(L ∩ []<>a) — every letter is unbounded on
# both sides — and counting mod 2 cannot see the alternation (both
# parities of #a − #b occur). Counting mod 3 can: the live component
# never reaches the residue class #a ≡ 0, #b ≡ 1, yet the word "b" does —
# a doomed prefix found without touching the PSPACE core. The history
# window on {x, y} (entered by guessing at an `x`) costs the
# materializing core a 2^14 subset construction for the same answer.
# Try: rlcheck check examples/systems/filter_mod3.ts "[]<>a" --stats
system
alphabet: a b x y
initial: s0
s0 a -> s1
s1 b -> s0
s0 x -> s0
s0 y -> s0
s1 x -> s1
s1 y -> s1
s0 b -> d1    # the wedge: one early b, then silence on a
d1 b -> d1
s0 x -> w1    # guess: this x opens the history window
w1 x -> w2
w1 y -> w2
w2 x -> w3
w2 y -> w3
w3 x -> w4
w3 y -> w4
w4 x -> w5
w4 y -> w5
w5 x -> w6
w5 y -> w6
w6 x -> w7
w6 y -> w7
w7 x -> w8
w7 y -> w8
w8 x -> w9
w8 y -> w9
w9 x -> w10
w9 y -> w10
w10 x -> w11
w10 y -> w11
w11 x -> w12
w11 y -> w12
w12 x -> w13
w12 y -> w13
w13 x -> w14
w13 y -> w14
w14 x -> s0
w14 y -> s0
w14 x -> w1
