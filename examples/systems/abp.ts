# The alternating-bit protocol over a lossy channel (22 states),
# generated from rl_bench::alternating_bit() via render_system.
# Try: rlcheck check examples/systems/abp.ts "[]<>deliver"
system
alphabet: send0 send1 ack0 ack1 deliver0 deliver1 lose deliver
initial: s0
s0 send0 -> s1
s1 deliver0 -> s2
s1 lose -> s3
s2 send0 -> s4
s2 deliver -> s5
s3 send0 -> s1
s4 lose -> s2
s4 deliver -> s6
s5 send0 -> s6
s5 ack0 -> s7
s6 ack0 -> s8
s6 lose -> s5
s7 send1 -> s9
s8 deliver0 -> s10
s8 lose -> s7
s9 deliver1 -> s11
s9 lose -> s12
s10 send1 -> s13
s11 send1 -> s14
s11 deliver -> s15
s12 send1 -> s9
s13 ack0 -> s9
s13 lose -> s16
s14 lose -> s11
s14 deliver -> s17
s15 send1 -> s17
s15 ack1 -> s0
s16 send1 -> s13
s16 ack0 -> s12
s17 ack1 -> s18
s17 lose -> s15
s18 deliver1 -> s19
s18 lose -> s0
s19 send0 -> s20
s20 ack1 -> s1
s20 lose -> s21
s21 send0 -> s20
s21 ack1 -> s3
