# Simulation-acceptable instance: a request/acknowledge handshake where
# every infinite behavior acknowledges infinitely often, so `[]<>ack` is
# relative-live and the inclusion pre(L) ⊆ pre(L ∩ []<>ack) *holds*. The
# ladder's third stage proves it by exhibiting an NFA simulation of the
# left prefix automaton inside the right one — no determinization at all.
# Try: rlcheck check examples/systems/filter_sim.ts "[]<>ack" --stats
system
alphabet: req work ack
initial: idle
idle req -> busy
busy work -> busy
busy ack -> idle
