# Pure fall-through instance: the inclusion pre(L) ⊆ pre(L ∩ []<>a)
# *fails* (after "b.b" the scheduler wedges into the b-only tail), but the
# failure is invisible to every abstraction in the pre-filter ladder —
# letter supports, boundedness, and counts mod k all agree between the two
# sides, because the live component can also absorb any number of bs one
# at a time, and the simulation stage only ever *proves* inclusions. The
# ladder returns Unknown on all three stages and the exact core finds the
# order-sensitive doomed prefix "b.b". The needle window (14-deep history
# guess) keeps the materializing core honest at 2^14 subset states.
# Try: rlcheck check examples/systems/filter_fallthrough.ts "[]<>a" --stats
system
alphabet: a b
initial: s0
s0 a -> s0
s0 b -> s1    # a lone b is answered by an a...
s1 a -> s0
s0 b -> d1    # ...unless the scheduler wedges:
d1 a -> s0
d1 b -> d2    # two bs in a row, one final a, then silence
d2 a -> d3
d3 b -> d3
s0 a -> w1    # guess: this a opens the history window
w1 a -> w2
w1 b -> w2
w2 a -> w3
w2 b -> w3
w3 a -> w4
w3 b -> w4
w4 a -> w5
w4 b -> w5
w5 a -> w6
w5 b -> w6
w6 a -> w7
w6 b -> w7
w7 a -> w8
w7 b -> w8
w8 a -> w9
w8 b -> w9
w9 a -> w10
w9 b -> w10
w10 a -> w11
w10 b -> w11
w11 a -> w12
w11 b -> w12
w12 a -> w13
w12 b -> w13
w13 a -> w14
w13 b -> w14
w14 a -> s0
w14 b -> s0
w14 a -> w1
