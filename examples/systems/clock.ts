# A two-state clock in the plain transition-system format.
system
alphabet: tick tock chime
initial: lo
lo tick -> hi
hi tock -> lo
hi chime -> hi
