//! The alternating-bit protocol over a lossy channel — the textbook system
//! whose liveness is *exactly* a relative liveness property.
//!
//! The data channel may lose any frame, so `□◇deliver` is classically
//! false: nothing forbids the channel from losing everything forever. But
//! the protocol is designed so that *fairness is sufficient* — retransmit
//! often enough and a frame gets through. That is precisely Definition 4.1:
//! every prefix extends, within the protocol, to a behavior delivering
//! infinitely often.
//!
//! The example runs the whole toolchain on it: the relative-liveness
//! decider, the Theorem 5.1 fair implementation executed by the strongly
//! fair scheduler, the Section 8 abstraction pipeline (hiding the protocol
//! internals), and the exact probabilistic analysis.
//!
//! Run with: `cargo run --example alternating_bit`

use relative_liveness::prelude::*;
use rl_bench::{alternating_bit, alternating_bit_components};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ts = alternating_bit();
    println!("Alternating-bit protocol (sender ∥ lossy channel ∥ receiver):");
    println!(
        "  {} states, {} transitions over {}",
        ts.state_count(),
        ts.transition_count(),
        ts.alphabet()
    );

    let eta = parse("[]<>deliver")?;
    let p = Property::formula(eta.clone());
    let behaviors = behaviors_of_ts(&ts);

    // Classical check: false, the channel may drop everything.
    let classical = satisfies(&behaviors, &p)?;
    println!("\nclassical  {eta}: {}", classical.holds);
    if let Some(x) = &classical.counterexample {
        println!("  counterexample: {}", x.display(ts.alphabet()));
    }
    // Relative check: true — fairness delivers.
    let relative = is_relative_liveness(&behaviors, &p)?;
    println!("rel-live   {eta}: {}", relative.holds);

    // Theorem 5.1: a fair implementation really delivers.
    let imp = synthesize_fair_implementation(&ts, &p)?;
    let r = run(&imp.system, &mut AgingScheduler::new(), 2_000);
    let deliver = imp.system.alphabet().symbol("deliver").unwrap();
    let lose = imp.system.alphabet().symbol("lose").unwrap();
    println!(
        "\nTheorem 5.1 implementation ({} states), strongly fair run of {} steps:",
        imp.system.state_count(),
        r.len()
    );
    println!(
        "  deliveries: {}   losses: {}",
        r.action_counts().get(&deliver).copied().unwrap_or(0),
        r.action_counts().get(&lose).copied().unwrap_or(0)
    );

    // Section 8: abstract away the whole protocol machinery.
    let h = Homomorphism::hiding(ts.alphabet(), ["deliver"])?;
    let analysis = verify_via_abstraction(&ts, &h, &eta)?;
    println!(
        "\nabstraction to {{deliver}}: {} state(s); abstract □◇deliver: {}; h simple: {}",
        analysis.abstract_system.state_count(),
        analysis.abstract_verdict.holds,
        analysis.simplicity.simple
    );
    println!("conclusion: {:?}", analysis.conclusion);

    // The compositional shortcut must refuse here — the hidden actions
    // (sends, acks, frame deliveries) are exactly the synchronized ones, so
    // hiding does not distribute over the composition.
    let components = alternating_bit_components();
    println!(
        "\ncompositional abstraction over the 3 components: {}",
        match rl_abstraction::compositional_abstract_behavior(
            &components,
            &Homomorphism::hiding(ts.alphabet(), ["deliver"])?,
        ) {
            Ok(_) => "ok".to_owned(),
            Err(e) => format!("refused — {e}"),
        }
    );

    // Probabilistic reading: under a uniform random scheduler (the channel
    // flips a fair coin between delivering and losing), delivery happens
    // almost surely.
    println!(
        "\nexact Pr(□◇deliver) under the uniform scheduler: {:.2}",
        probability_of_recurrence(&ts, ts.alphabet().symbol("deliver").unwrap())
    );
    Ok(())
}
