//! Verification by behavior abstraction (Section 8, Corollary 8.4).
//!
//! Both the correct server (Figure 2) and the broken one (Figure 3)
//! abstract — under the homomorphism keeping only `request`, `result`,
//! `reject` — to the *same* two-state system (Figure 4). What separates
//! them is *simplicity* of the homomorphism (Definition 6.3): simple for
//! Figure 2, not simple for Figure 3. Only in the simple case may the
//! abstract verdict be transferred down.
//!
//! Run with: `cargo run --example abstraction_transfer`

use relative_liveness::prelude::*;

fn analyze(name: &str, system: &TransitionSystem) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {name} ===");
    let keep = ["request", "result", "reject"];
    let h = Homomorphism::hiding(system.alphabet(), keep)?;
    let eta = parse("[]<>result")?;

    let analysis = verify_via_abstraction(system, &h, &eta)?;
    println!(
        "  abstract system (Figure 4): {} states, {} transitions",
        analysis.abstract_system.state_count(),
        analysis.abstract_system.transition_count()
    );
    println!(
        "  abstract relative liveness of {eta}: {}",
        if analysis.abstract_verdict.holds {
            "holds"
        } else {
            "fails"
        }
    );
    println!(
        "  h(L) has maximal words: {}",
        if analysis.maximal_words { "yes" } else { "no" }
    );
    match &analysis.simplicity.violation {
        None => println!(
            "  simplicity of h (checked over {} continuation pairs): SIMPLE",
            analysis.simplicity.pairs_checked
        ),
        Some(w) => println!(
            "  simplicity of h: NOT SIMPLE — violated at '{}'",
            format_word(system.alphabet(), w)
        ),
    }
    println!(
        "  transported property R̄(η): {}",
        analysis.transported_formula
    );
    match &analysis.conclusion {
        TransferConclusion::ConcreteHolds => {
            println!("  ⇒ CONCLUSION: the concrete system relatively satisfies R̄(η)");
            println!("    (Theorem 8.2 — verified on the 2-state abstraction only!)");
        }
        TransferConclusion::ConcreteFails {
            doomed_abstract_prefix,
        } => println!(
            "  ⇒ CONCLUSION: fails concretely too (Theorem 8.3); abstract doomed \
             prefix '{}'",
            format_word(h.target(), doomed_abstract_prefix)
        ),
        TransferConclusion::InconclusiveNotSimple { violation } => {
            println!("  ⇒ CONCLUSION: INCONCLUSIVE — h is not simple (Definition 6.3)");
            println!(
                "    the abstract 'holds' may NOT be transferred; violation at '{}'",
                format_word(system.alphabet(), violation)
            );
        }
        TransferConclusion::InconclusiveMaximalWords => {
            println!("  ⇒ CONCLUSIVE: h(L) has maximal words — apply the #-extension first")
        }
    }

    // Ground truth, computed directly on the concrete system:
    let truth = check_transported_concrete(system, &h, &eta)?;
    println!(
        "  ground truth (direct concrete check of R̄(η)): {}",
        if truth.holds { "holds" } else { "fails" }
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    analyze("Correct server (Figure 2)", &server_behaviors())?;
    analyze("Erroneous server (Figure 3)", &server_err_behaviors())?;

    println!("Note how both systems share the same Figure 4 abstraction — only");
    println!("the simplicity check tells the sound transfer from the unsound one.");
    Ok(())
}
