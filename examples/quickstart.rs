//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 1 server as a Petri net, derives its behaviors
//! (Figure 2), and shows the paper's central point: `□◇result` is *false*
//! classically (an unfair scheduler starves the client) but *relatively
//! live* — all it needs is some fairness.
//!
//! Run with: `cargo run --example quickstart`

use relative_liveness::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1: the server Petri net.
    let net = server_net();
    println!("Figure 1 — server Petri net:");
    println!("  places:      {}", net.place_names().join(", "));
    println!(
        "  transitions: {}",
        net.transitions()
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Figure 2: its reachability graph (the system's behaviors).
    let system = reachability_graph(&net, 1_000)?;
    println!("\nFigure 2 — reachability graph:");
    println!("  states:      {}", system.state_count());
    println!("  transitions: {}", system.transition_count());
    println!(
        "  initial:     {}",
        system.state_label(system.initial()).unwrap_or_default()
    );

    let behaviors = behaviors_of_ts(&system);
    let eta = parse("[]<>result")?;
    let property = Property::formula(eta.clone());

    // Classical satisfaction fails, with the paper's counterexample shape.
    let classical = satisfies(&behaviors, &property)?;
    println!("\nClassical check of {eta}:");
    match &classical.counterexample {
        Some(x) => println!("  FAILS — counterexample: {}", x.display(system.alphabet())),
        None => println!("  holds"),
    }

    // Relative liveness holds: every prefix can still be extended to
    // infinitely many results.
    let relative = is_relative_liveness(&behaviors, &property)?;
    println!("\nRelative liveness check of {eta}:");
    println!(
        "  {}",
        if relative.holds {
            "HOLDS — some fair implementation satisfies the property \
             (Theorem 5.1)"
        } else {
            "fails"
        }
    );

    // Show a density witness (Lemma 4.9): even after the adversarial prefix
    // lock·request·no, a P-satisfying behavior is still reachable.
    let prefix = parse_word(system.alphabet(), "lock.request.no")?;
    if let Some(w) = extension_witness(&behaviors, &property, &prefix)? {
        println!(
            "\nExtension witness after '{}':\n  {}",
            format_word(system.alphabet(), &prefix),
            w.display(system.alphabet())
        );
    }

    // DOT output for the paper figures (pipe into `dot -Tpng`).
    println!("\n--- DOT (Figure 2) ---\n{}", system.to_dot("figure2"));
    Ok(())
}
