//! The erroneous server (Figure 3): relative liveness *detects* the bug
//! that no fairness assumption can paper over.
//!
//! In the broken system, once the resource is locked it can never be freed
//! again, and requests can be rejected even when the resource is free. The
//! decider reports the exact *doomed prefix* after which `result` is gone
//! forever.
//!
//! Run with: `cargo run --example server_error`

use relative_liveness::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = server_err_behaviors();
    println!("Figure 3 — erroneous server:");
    println!("  states:      {}", system.state_count());
    println!("  transitions: {}", system.transition_count());

    let behaviors = behaviors_of_ts(&system);
    let eta = parse("[]<>result")?;
    let property = Property::formula(eta.clone());

    let verdict = is_relative_liveness(&behaviors, &property)?;
    println!("\nRelative liveness check of {eta}:");
    if let Some(prefix) = &verdict.doomed_prefix {
        println!(
            "  FAILS — doomed prefix: '{}'",
            format_word(system.alphabet(), prefix)
        );
        println!("  After this prefix NO continuation inside the system can");
        println!("  produce another result — no fairness notion can help.");
    } else {
        println!("  holds (unexpected!)");
    }

    // Contrast with a property the broken system still relatively satisfies:
    // the client always gets *answers* (results or rejections).
    let answers = parse("[]<>(result | reject)")?;
    let ok = is_relative_liveness(&behaviors, &Property::formula(answers.clone()))?;
    println!("\nRelative liveness check of {answers}:");
    println!("  {}", if ok.holds { "HOLDS" } else { "fails" });

    // Relative safety view (Lemma 4.4): □◇result is trivially rel-safe here?
    let safety = is_relative_safety(&behaviors, &property)?;
    println!("\nRelative safety check of {eta}:");
    match &safety.escaping_behavior {
        Some(x) => println!(
            "  FAILS — escaping behavior: {}",
            x.display(system.alphabet())
        ),
        None => println!("  holds"),
    }

    // Theorem 5.1's synthesis must refuse this system/property pair.
    match synthesize_fair_implementation(&system, &property) {
        Err(e) => println!("\nFair-implementation synthesis correctly refused:\n  {e}"),
        Ok(_) => println!("\nSynthesis unexpectedly succeeded!"),
    }
    Ok(())
}
