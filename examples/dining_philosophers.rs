//! Dining philosophers through the lens of relative liveness.
//!
//! Two philosophers share two forks. In the *polite* protocol a philosopher
//! picks up both forks atomically (no deadlock); in the *greedy* protocol
//! each grabs their left fork first — the classic deadlock.
//!
//! Relative liveness asks the paper's question: can "philosopher 1 eats
//! infinitely often" be achieved by *some* fair implementation?
//!
//! The answer exposes a subtlety of the behavior semantics: `lim(L)`
//! contains only *infinite* runs, so the greedy protocol's deadlock branch
//! simply vanishes from the behavior set — `□◇eat1` is relatively live in
//! **both** protocols! The deadlock shows up one level down, as a failure
//! of `L = pre(lim(L))`: the firing sequence `grab1L·grab2L` is executable
//! but extends to no behavior at all. (In the paper's terms: the *system
//! language* is not machine-closed with respect to its own limit.) The
//! example checks both.
//!
//! Run with: `cargo run --example dining_philosophers`

use relative_liveness::prelude::*;

/// Polite protocol: `take_i` acquires both forks at once, `eat_i`, then
/// `put_i` releases both.
fn polite() -> Result<PetriNet, Box<dyn std::error::Error>> {
    let mut net = PetriNet::new();
    let fork_l = net.add_place("forkL", 1)?;
    let fork_r = net.add_place("forkR", 1)?;
    let think1 = net.add_place("think1", 1)?;
    let eat1p = net.add_place("eating1", 0)?;
    let think2 = net.add_place("think2", 1)?;
    let eat2p = net.add_place("eating2", 0)?;
    net.add_transition(
        "take1",
        [(think1, 1), (fork_l, 1), (fork_r, 1)],
        [(eat1p, 1)],
    )?;
    net.add_transition("eat1", [(eat1p, 1)], [(eat1p, 1)])?;
    net.add_transition(
        "put1",
        [(eat1p, 1)],
        [(think1, 1), (fork_l, 1), (fork_r, 1)],
    )?;
    net.add_transition(
        "take2",
        [(think2, 1), (fork_l, 1), (fork_r, 1)],
        [(eat2p, 1)],
    )?;
    net.add_transition("eat2", [(eat2p, 1)], [(eat2p, 1)])?;
    net.add_transition(
        "put2",
        [(eat2p, 1)],
        [(think2, 1), (fork_l, 1), (fork_r, 1)],
    )?;
    Ok(net)
}

/// Greedy protocol: left fork first, then right fork — deadlockable.
fn greedy() -> Result<PetriNet, Box<dyn std::error::Error>> {
    let mut net = PetriNet::new();
    let fork_l = net.add_place("forkL", 1)?;
    let fork_r = net.add_place("forkR", 1)?;
    let think1 = net.add_place("think1", 1)?;
    let has_l1 = net.add_place("hasL1", 0)?;
    let eat1p = net.add_place("eating1", 0)?;
    let think2 = net.add_place("think2", 1)?;
    let has_l2 = net.add_place("hasL2", 0)?;
    let eat2p = net.add_place("eating2", 0)?;
    // Philosopher 1: left = forkL, right = forkR.
    net.add_transition("grab1L", [(think1, 1), (fork_l, 1)], [(has_l1, 1)])?;
    net.add_transition("grab1R", [(has_l1, 1), (fork_r, 1)], [(eat1p, 1)])?;
    net.add_transition("eat1", [(eat1p, 1)], [(eat1p, 1)])?;
    net.add_transition(
        "put1",
        [(eat1p, 1)],
        [(think1, 1), (fork_l, 1), (fork_r, 1)],
    )?;
    // Philosopher 2: left = forkR, right = forkL (circular order).
    net.add_transition("grab2L", [(think2, 1), (fork_r, 1)], [(has_l2, 1)])?;
    net.add_transition("grab2R", [(has_l2, 1), (fork_l, 1)], [(eat2p, 1)])?;
    net.add_transition("eat2", [(eat2p, 1)], [(eat2p, 1)])?;
    net.add_transition(
        "put2",
        [(eat2p, 1)],
        [(think2, 1), (fork_l, 1), (fork_r, 1)],
    )?;
    Ok(net)
}

fn analyze(name: &str, net: &PetriNet) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {name} ===");
    let ts = reachability_graph(net, 10_000)?;
    let deadlocks = (0..ts.state_count()).filter(|&q| ts.is_deadlock(q)).count();
    println!(
        "  reachability graph: {} states, {} transitions, {} deadlock state(s)",
        ts.state_count(),
        ts.transition_count(),
        deadlocks
    );
    let eta = parse("[]<>eat1")?;
    let verdict = is_relative_liveness_of_ts(&ts, &Property::formula(eta.clone()))?;
    match &verdict.doomed_prefix {
        None => {
            println!("  □◇eat1 is a RELATIVE LIVENESS property of lim(L).");
            let imp = synthesize_fair_implementation(&ts, &Property::formula(eta))?;
            let r = run(&imp.system, &mut AgingScheduler::new(), 600);
            let eat1 = imp.system.alphabet().symbol("eat1").unwrap();
            println!(
                "  Theorem 5.1 implementation: {} states; fair run eats {} times in {} steps.",
                imp.system.state_count(),
                r.action_counts().get(&eat1).copied().unwrap_or(0),
                r.len()
            );
        }
        Some(w) => {
            println!(
                "  □◇eat1 FAILS relatively — doomed prefix: '{}'",
                format_word(ts.alphabet(), w)
            );
            println!("  No fairness assumption can recover from this prefix.");
        }
    }
    // lim(L) only contains infinite runs, so deadlocks are invisible to the
    // relative check above. They surface as L ≠ pre(lim(L)): an executable
    // firing sequence that is a prefix of no behavior.
    let language = ts.to_nfa().determinize();
    let live_prefixes = behaviors_of_ts(&ts).prefix_nfa().determinize();
    match dfa_included(&language, &live_prefixes) {
        None => println!("  L = pre(lim L): every firing sequence extends to a behavior."),
        Some(w) => println!(
            "  DEADLOCK HAZARD: firing sequence '{}' extends to no behavior \
             (L ≠ pre(lim L)) — relative liveness over lim(L) cannot see it.",
            format_word(ts.alphabet(), &w)
        ),
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    analyze("Polite protocol (atomic fork pickup)", &polite()?)?;
    analyze("Greedy protocol (left fork first)", &greedy()?)?;
    Ok(())
}
