//! Feature-interaction detection by behavior abstraction — a telephony
//! scenario in the spirit of the intelligent-network case study the paper
//! cites (Capellmann et al., CAV '96), rebuilt from open parts.
//!
//! A call handler is composed with two subscriber features, *call
//! forwarding* (CF) and *voicemail* (VM). Feature toggles are internal
//! (hidden by the abstraction); the observable actions are `call`,
//! `deliver`, `forward`, `vmrec`. The question: is `□◇deliver` —
//! "calls keep being delivered to the subscriber" — achievable under
//! fairness, i.e. a relative liveness property?
//!
//! * In the correct configuration, CF can always be switched off again:
//!   the property is relatively live, the hiding homomorphism is simple,
//!   and the verdict is obtained on a small abstraction.
//! * In the buggy configuration the `cfoff` capability is lost (a classic
//!   feature-interaction defect): once CF activates, delivery is dead. The
//!   abstraction *looks identical* — only the simplicity check exposes
//!   that transferring the abstract verdict would be unsound.
//!
//! Run with: `cargo run --example feature_interaction`

use relative_liveness::prelude::*;

/// The call handler: delivers, forwards, or records a ringing call.
fn handler() -> Result<TransitionSystem, Box<dyn std::error::Error>> {
    let ab = Alphabet::new(["call", "deliver", "forward", "vmrec"])?;
    let call = ab.symbol("call").unwrap();
    let deliver = ab.symbol("deliver").unwrap();
    let forward = ab.symbol("forward").unwrap();
    let vmrec = ab.symbol("vmrec").unwrap();
    let mut ts = TransitionSystem::new(ab);
    let idle = ts.add_labeled_state("idle");
    let ringing = ts.add_labeled_state("ringing");
    ts.set_initial(idle);
    ts.add_transition(idle, call, ringing);
    ts.add_transition(ringing, deliver, idle);
    ts.add_transition(ringing, forward, idle);
    ts.add_transition(ringing, vmrec, idle);
    Ok(ts)
}

/// Call forwarding: `forward` only when active; `deliver` only when
/// inactive (forwarding takes the call away from the subscriber).
/// `with_off` controls whether the feature can ever be deactivated.
fn call_forwarding(with_off: bool) -> Result<TransitionSystem, Box<dyn std::error::Error>> {
    let names: Vec<&str> = if with_off {
        vec!["cfon", "cfoff", "forward", "deliver"]
    } else {
        vec!["cfon", "forward", "deliver"]
    };
    let ab = Alphabet::new(names)?;
    let cfon = ab.symbol("cfon").unwrap();
    let forward = ab.symbol("forward").unwrap();
    let deliver = ab.symbol("deliver").unwrap();
    let mut ts = TransitionSystem::new(ab.clone());
    let off = ts.add_labeled_state("cf-off");
    let on = ts.add_labeled_state("cf-on");
    ts.set_initial(off);
    ts.add_transition(off, cfon, on);
    ts.add_transition(off, deliver, off);
    ts.add_transition(on, forward, on);
    if with_off {
        let cfoff = ab.symbol("cfoff").unwrap();
        ts.add_transition(on, cfoff, off);
    }
    Ok(ts)
}

/// Voicemail: `vmrec` only while enabled; always re-toggleable.
fn voicemail() -> Result<TransitionSystem, Box<dyn std::error::Error>> {
    let ab = Alphabet::new(["vmon", "vmoff", "vmrec"])?;
    let vmon = ab.symbol("vmon").unwrap();
    let vmoff = ab.symbol("vmoff").unwrap();
    let vmrec = ab.symbol("vmrec").unwrap();
    let mut ts = TransitionSystem::new(ab);
    let off = ts.add_labeled_state("vm-off");
    let on = ts.add_labeled_state("vm-on");
    ts.set_initial(off);
    ts.add_transition(off, vmon, on);
    ts.add_transition(on, vmoff, off);
    ts.add_transition(on, vmrec, on);
    Ok(ts)
}

fn analyze(name: &str, cf_can_deactivate: bool) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {name} ===");
    let system = handler()?
        .compose(&call_forwarding(cf_can_deactivate)?)?
        .compose(&voicemail()?)?;
    println!(
        "  composed system: {} states, {} transitions over {}",
        system.state_count(),
        system.transition_count(),
        system.alphabet()
    );

    let observable = ["call", "deliver", "forward", "vmrec"];
    let h = Homomorphism::hiding(system.alphabet(), observable)?;
    let eta = parse("[]<>deliver")?;

    let analysis = verify_via_abstraction(&system, &h, &eta)?;
    println!(
        "  abstraction: {} states (concrete had {})",
        analysis.abstract_system.state_count(),
        system.state_count()
    );
    println!(
        "  abstract □◇deliver: {} | h simple: {}",
        if analysis.abstract_verdict.holds {
            "holds"
        } else {
            "fails"
        },
        analysis.simplicity.simple
    );
    match &analysis.conclusion {
        TransferConclusion::ConcreteHolds => {
            println!("  ⇒ delivery stays live under fairness — no harmful interaction")
        }
        TransferConclusion::InconclusiveNotSimple { violation } => {
            println!(
                "  ⇒ INTERACTION SUSPECT: abstraction hides a mode switch at '{}'",
                format_word(system.alphabet(), violation)
            );
            // Confirm on the concrete system.
            let direct = is_relative_liveness_of_ts(&system, &Property::formula(eta.clone()))?;
            match &direct.doomed_prefix {
                Some(w) => println!(
                    "    confirmed concretely — doomed prefix '{}'",
                    format_word(system.alphabet(), w)
                ),
                None => println!("    (concrete check passes — abstraction was just too coarse)"),
            }
        }
        TransferConclusion::ConcreteFails {
            doomed_abstract_prefix,
        } => {
            println!(
                "  ⇒ INTERACTION FOUND on the abstraction itself: after '{}' delivery \
                 is doomed (Theorem 8.3 transfers the failure down)",
                format_word(h.target(), doomed_abstract_prefix)
            );
            let direct = is_relative_liveness_of_ts(&system, &Property::formula(eta.clone()))?;
            if let Some(w) = &direct.doomed_prefix {
                println!(
                    "    confirmed concretely — doomed prefix '{}'",
                    format_word(system.alphabet(), w)
                );
            }
        }
        TransferConclusion::InconclusiveMaximalWords => {
            println!("  ⇒ h(L) has maximal words — apply the #-extension first")
        }
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    analyze("Correct configuration (CF deactivatable)", true)?;
    analyze("Buggy configuration (CF cannot be switched off)", false)?;
    Ok(())
}
