//! In-tree stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The workspace builds in fully offline environments, so external registry
//! crates are replaced by small local implementations with the same paths and
//! method names (`rand::rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`). The generator is xoshiro256++ seeded
//! through splitmix64: deterministic, fast, statistically fine for test-input
//! generation and Monte-Carlo sampling — and explicitly **not**
//! cryptographic.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`; `lo < hi` is the caller's contract.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                // Modulo bias is < 2^-32 for the span sizes used in this
                // workspace (test-input generation); accepted for simplicity.
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(usize, u64, u32, u16, u8);

impl SampleUniform for i64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleUniform for i32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        i64::sample_range(rng, lo as i64, hi as i64) as i32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
