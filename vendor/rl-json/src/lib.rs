//! Self-contained JSON support for the relative-liveness workspace.
//!
//! The workspace builds in fully offline environments, so serde/serde_json
//! are replaced by this small crate: a [`Json`] value model, a strict parser
//! ([`parse`]) with a recursion-depth guard, compact and pretty printers, and
//! the [`ToJson`]/[`FromJson`] conversion traits the machine types implement
//! by hand. The entry points mirror serde_json's call shape so persistence
//! code reads the same: [`to_string`], [`to_string_pretty`], [`from_str`].
//!
//! Deserialization is validating: implementations rebuild values through
//! ordinary constructors, so a corrupted document produces an error, never an
//! inconsistent structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Maximum nesting depth the parser accepts; deeper documents are rejected
/// instead of risking a stack overflow on hostile input.
const MAX_DEPTH: usize = 512;

/// A JSON document fragment.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (JSON numbers without fraction/exponent).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when printing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the required field `key` of an object, or a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::custom(format!("missing field `{key}`")))
    }

    /// The elements of an array, or an error for any other shape.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Error raised by parsing or by [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Builds an error from any displayable value (mirrors
    /// `serde::de::Error::custom`).
    pub fn custom(msg: impl fmt::Display) -> JsonError {
        JsonError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Conversion into the JSON value model.
pub trait ToJson {
    /// Renders `self` as a [`Json`] value.
    fn to_json(&self) -> Json;
}

/// Validating conversion out of the JSON value model.
pub trait FromJson: Sized {
    /// Rebuilds a value, re-checking every structural invariant.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

// ---------------------------------------------------------------------------
// Primitive and container impls
// ---------------------------------------------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Json, JsonError> {
        Ok(value.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<bool, JsonError> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<String, JsonError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<f64, JsonError> {
        match value {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(x) => Ok(*x),
            other => Err(JsonError::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_json_integer {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }

        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<$t, JsonError> {
                match value {
                    Json::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        JsonError::custom(format!(
                            "number {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(JsonError::custom(format!(
                        "expected integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_json_integer!(usize, u64, u32, u16, u8, i64, i32);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Option<T>, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Vec<T>, JsonError> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<(A, B), JsonError> {
        match value.as_arr()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            items => Err(JsonError::custom(format!(
                "expected 2-element array, got {} elements",
                items.len()
            ))),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(value: &Json) -> Result<(A, B, C), JsonError> {
        match value.as_arr()? {
            [a, b, c] => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            items => Err(JsonError::custom(format!(
                "expected 3-element array, got {} elements",
                items.len()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Object builder (keeps hand-written impls terse and field order stable)
// ---------------------------------------------------------------------------

/// Incremental JSON object builder preserving field order.
#[derive(Default)]
pub struct ObjBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// An empty object.
    pub fn new() -> ObjBuilder {
        ObjBuilder::default()
    }

    /// Appends a field.
    pub fn field(mut self, key: &str, value: impl ToJson) -> ObjBuilder {
        self.fields.push((key.to_owned(), value.to_json()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Serializes a value compactly (no whitespace).
///
/// # Errors
///
/// Never fails today; the `Result` mirrors serde_json's call shape so
/// persistence code keeps its error handling.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

/// Serializes a value with 2-space indentation.
///
/// # Errors
///
/// Never fails today; see [`to_string`].
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    write_pretty(&value.to_json(), &mut out, 0);
    Ok(out)
}

/// Parses a document and converts it.
///
/// # Errors
///
/// Returns a [`JsonError`] for malformed JSON, trailing garbage, excessive
/// nesting, or any structural invariant the target type rejects.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Parses a document into the value model.
///
/// # Errors
///
/// Returns a [`JsonError`] for malformed JSON, trailing garbage, or nesting
/// deeper than an internal limit.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after document"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        let text = format!("{x}");
        // Keep the document a valid JSON number: `{}` prints integral floats
        // without a fractional part.
        if text.contains(['.', 'e', 'E']) {
            out.push_str(&text);
        } else {
            out.push_str(&text);
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; serde_json emits null here too.
        out.push_str("null");
    }
}

fn write_compact(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(x) => write_float(*x, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Json, out: &mut String, indent: usize) {
    match value {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Json::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl fmt::Display) -> JsonError {
        JsonError::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the bytes
                    // are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("invalid number"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("number out of range"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for doc in ["null", "true", "false", "0", "-17", "3.5", r#""hi""#] {
            let v = parse(doc).unwrap();
            assert_eq!(to_string(&v).unwrap(), doc);
        }
    }

    #[test]
    fn exact_compact_output() {
        let v = Json::Arr(vec![
            Json::Str("request".into()),
            Json::Str("result".into()),
            Json::Str("reject".into()),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"["request","result","reject"]"#);
    }

    #[test]
    fn object_roundtrip_preserves_order() {
        let v = ObjBuilder::new()
            .field("alphabet", vec!["a".to_owned()])
            .field("state_count", 2usize)
            .field("initial", vec![0usize])
            .build();
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"alphabet":["a"],"state_count":2,"initial":[0]}"#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_printer_is_reparsable() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nquote\"back\\slash\ttab\u{1}unicode\u{1F600}";
        let v = Json::Str(original.to_owned());
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
        // \u escapes, including surrogate pairs, parse.
        assert_eq!(
            parse(r#""A😀""#).unwrap(),
            Json::Str("A\u{1F600}".to_owned())
        );
    }

    #[test]
    fn malformed_documents_rejected() {
        for doc in [
            "",
            "{",
            "[1,",
            r#"{"a":}"#,
            "01x",
            r#""unterminated"#,
            "[1] trailing",
            r#"{"a":1,"a":2}"#,
            "nul",
            "+1",
            r#""\q""#,
        ] {
            assert!(parse(doc).is_err(), "parsed malformed {doc:?}");
        }
    }

    #[test]
    fn depth_guard_trips() {
        let deep = "[".repeat(600) + &"]".repeat(600);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn typed_conversions() {
        let v: Vec<(usize, usize, usize)> = from_str("[[0,1,2],[3,4,5]]").unwrap();
        assert_eq!(v, vec![(0, 1, 2), (3, 4, 5)]);
        assert!(from_str::<Vec<usize>>("[-1]").is_err());
        assert!(from_str::<Vec<usize>>(r#"["x"]"#).is_err());
        let opt: Vec<Option<String>> = from_str(r#"["a",null]"#).unwrap();
        assert_eq!(opt, vec![Some("a".to_owned()), None]);
    }
}
