//! In-tree stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The workspace builds in fully offline environments, so external registry
//! crates are replaced by small local implementations with the same surface:
//! [`Criterion`], [`BenchmarkGroup`] (`sample_size`, `measurement_time`,
//! `warm_up_time`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: per benchmark, a wall-clock warm-up
//! loop followed by `sample_size` timed samples (each sample batching enough
//! iterations to be measurable), reported as min/median/max per iteration on
//! stdout. When invoked by `cargo test` (cargo passes `--test`), each
//! benchmark body runs exactly once so the target doubles as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (stand-in for criterion's `Criterion`).
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the harness is invoked with `--test`; run each
        // benchmark once and skip measurement.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            test_mode,
            sample_size: 10,
            measurement_time: Duration::from_millis(1500),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnMut(&mut Bencher),
    ) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, routine);
        group.finish();
    }
}

/// A named set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the wall-clock budget for the warm-up loop.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        bencher.report(&self.name, &id.label);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| routine(b, input));
    }

    /// Ends the group (report lines are emitted per benchmark already).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times a closure under the group's settings.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, batching iterations per sample so that even
    /// sub-microsecond bodies produce meaningful timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

        // Batch size targeting measurement_time split across sample_size
        // samples.
        let sample_nanos =
            (self.measurement_time.as_nanos() / self.sample_size.max(1) as u128).max(1);
        let batch = (sample_nanos / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let deadline = Instant::now() + self.measurement_time.saturating_mul(2);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, label: &str) {
        let name = if group.is_empty() {
            label.to_owned()
        } else {
            format!("{group}/{label}")
        };
        if self.test_mode {
            println!("{name}: ok (test mode)");
            return;
        }
        if self.samples.is_empty() {
            println!("{name}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "{name}: median {:?}/iter (min {:?}, max {:?}, {} samples)",
            median,
            sorted[0],
            sorted[sorted.len() - 1],
            sorted.len()
        );
    }
}

/// Bundles benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn bench_runs_routine() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(1), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                black_box(x * 2)
            })
        });
        group.finish();
        assert!(calls >= 1);
    }
}
