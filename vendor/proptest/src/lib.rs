//! In-tree stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The workspace builds in fully offline environments, so external registry
//! crates are replaced by small local implementations keeping the same import
//! paths and macro surface: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, `prop_oneof!`, the [`strategy::Strategy`] combinators
//! (`prop_map`, `prop_recursive`, `boxed`), [`collection::vec`],
//! [`option::of`] and [`sample::select`].
//!
//! Differences from upstream proptest, deliberate for size and determinism:
//!
//! * **No shrinking.** A failing case reports the failure message, the case
//!   number and the (fixed) seed; inputs are small by construction in this
//!   workspace, so minimization matters less.
//! * **Deterministic seeding.** The RNG seed is derived from the test's
//!   module path and name, so a run either always passes or always fails —
//!   there are no flaky property tests and no persistence files.
//! * Strategies are plain samplers (`fn sample(&mut TestRng) -> Value`);
//!   there is no value tree.

#![forbid(unsafe_code)]

/// Test execution: configuration, RNG, case errors and the runner loop.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG handed to strategies during sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Builds a generator from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Draws uniformly from `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property is violated; the whole test fails.
        Fail(String),
        /// A `prop_assume!` precondition was not met; the case is discarded.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Runner configuration (subset of upstream's `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on discarded (`prop_assume!`-rejected) cases before
        /// the runner gives up on generating further inputs.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                max_global_rejects: cases.saturating_mul(256),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(256)
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` until `config.cases` successes, panicking on the first
    /// failure. The seed is a pure function of `name`, so results are
    /// reproducible across runs and machines.
    pub fn run(
        config: &ProptestConfig,
        name: &str,
        case: &dyn Fn(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::seed_from_u64(fnv1a(name));
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected >= config.max_global_rejects {
                        // The assumption is too strict to reach the target
                        // count; accept the cases exercised so far.
                        eprintln!(
                            "proptest {name}: gave up after {rejected} rejects \
                             ({passed}/{} cases passed)",
                            config.cases
                        );
                        return;
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name} failed after {passed} passing case(s) \
                         ({rejected} rejected): {msg}"
                    );
                }
            }
        }
    }
}

/// Strategies: deterministic samplers for test inputs.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds recursive values: `self` generates leaves, `recurse` builds
        /// one extra level on top of a strategy for subtrees, applied up to
        /// `depth` times. `_desired_size` and `_expected_branch_size` are
        /// accepted for upstream signature compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(strat).boxed();
                let leaf = leaf.clone();
                strat = BoxedStrategy::new(move |rng| {
                    // Bias toward branching; the chain bottoms out at `leaf`
                    // after `depth` levels regardless.
                    if rng.below(4) < 3 {
                        branch.sample(rng)
                    } else {
                        leaf.sample(rng)
                    }
                });
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(move |rng| self.sample(rng))
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        sampler: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a sampling function.
        pub fn new(sampler: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy {
                sampler: Arc::new(sampler),
            }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sampler: Arc::clone(&self.sampler),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sampler)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    $(let $v = $s.sample(rng);)+
                    ($($v,)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

    /// Uniform choice between alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the (non-empty) list of alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].sample(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for vectors with lengths in `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Some` (3 times in 4) or `None`.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) < 3 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// Strategy for optional values of `inner`'s type.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling from fixed pools.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a static slice.
    #[derive(Clone, Debug)]
    pub struct Select<T: 'static> {
        items: &'static [T],
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }

    /// Strategy drawing uniformly from `items` (which must be non-empty).
    pub fn select<T: Clone + 'static>(items: &'static [T]) -> Select<T> {
        assert!(!items.is_empty(), "select from empty slice");
        Select { items }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies and runs the body until
/// the configured number of cases passes.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &|__proptest_rng: &mut $crate::test_runner::TestRng|
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(
                            let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property test, failing the case (without
/// panicking the sampler loop) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0usize..10, 1..=4);
        let mut r1 = TestRng::seed_from_u64(5);
        let mut r2 = TestRng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        let config = ProptestConfig::with_cases(8);
        crate::test_runner::run(&config, "failing_property", &|rng| {
            let x = crate::strategy::Strategy::sample(&(0usize..100), rng);
            prop_assert!(x < 1, "x was {x}");
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_surface_works(
            xs in crate::collection::vec(0usize..5, 0..6),
            flag in crate::option::of(0usize..2),
            pick in crate::sample::select(&[10usize, 20, 30]),
        ) {
            prop_assert!(xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
            if let Some(f) = flag {
                prop_assert!(f < 2);
            }
            prop_assert!(pick.is_multiple_of(10));
            prop_assume!(pick != 30);
            prop_assert_ne!(pick, 30);
        }

        #[test]
        fn oneof_and_recursive(expr in expr_strategy()) {
            prop_assert!(depth(&expr) <= 4, "depth {} expr {:?}", depth(&expr), expr);
        }
    }

    #[derive(Clone, Debug)]
    enum Expr {
        // The payload is only generated, never read back — it exists to
        // exercise `prop_map` over a recursive strategy.
        #[allow(dead_code)]
        Leaf(usize),
        Pair(Box<Expr>, Box<Expr>),
    }

    fn depth(e: &Expr) -> usize {
        match e {
            Expr::Leaf(_) => 1,
            Expr::Pair(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn expr_strategy() -> BoxedStrategy<Expr> {
        let leaf = prop_oneof![Just(Expr::Leaf(0)), (1usize..9).prop_map(Expr::Leaf)];
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Pair(Box::new(a), Box::new(b)))
        })
        .boxed()
    }
}
